"""Per-query trace contexts: span trees with I/O and time attribution.

A :class:`QueryTrace` is bound to (at most) one :class:`~repro.storage.pager.Pager`
and records a tree of :class:`Span` objects. Entering a span snapshots
the pager's :class:`~repro.storage.stats.IOStats` and buffer counters;
leaving it stores the inclusive delta, so nested spans attribute every
page access to the innermost phase that caused it without any per-access
hook in the storage engine.

Hot paths report through the module-level :func:`span` / :func:`incr`
functions. With no active trace these are a global load plus a ``None``
check — the no-op mode costs nothing measurable and records nothing, so
disabling tracing can never change query results or counters.

Span names are dotted: the first segment is the *phase* (``plan``,
``descend``, ``sweep``, ``fetch``, ``verify``, ``build``, ``maintain``),
the rest is free-form detail (``sweep.primary``, ``sweep.app1``).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.storage.stats import IOStats


@dataclass
class Span:
    """One timed, I/O-attributed phase of a query (inclusive of children)."""

    name: str
    meta: dict = field(default_factory=dict)
    elapsed: float = 0.0  # seconds, inclusive
    io: IOStats = field(default_factory=IOStats)
    buffer_hits: int = 0
    buffer_misses: int = 0
    counters: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def phase(self) -> str:
        """The span's phase bucket (first dotted segment of the name)."""
        return self.name.split(".", 1)[0]

    @property
    def pages(self) -> int:
        """Logical page accesses charged to this span (inclusive)."""
        return self.io.logical_reads + self.io.logical_writes

    @property
    def hit_ratio(self) -> float:
        total = self.buffer_hits + self.buffer_misses
        return self.buffer_hits / total if total else 0.0

    def incr(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def phase_pages(self) -> dict[str, int]:
        """Logical page accesses per phase, attributed to the *innermost*
        span that caused them (exclusive accounting over the subtree)."""
        totals: dict[str, int] = {}
        for node in self.walk():
            exclusive = node.pages - sum(c.pages for c in node.children)
            totals[node.phase] = totals.get(node.phase, 0) + exclusive
        return totals

    def total_counters(self) -> dict[str, float]:
        """Counters summed over the whole subtree."""
        totals: dict[str, float] = {}
        for node in self.walk():
            for key, value in node.counters.items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def to_dict(self) -> dict:
        """JSON-ready representation (schema documented in the README)."""
        return {
            "name": self.name,
            "meta": dict(self.meta),
            "elapsed_ms": self.elapsed * 1000.0,
            "io": self.io.as_dict(),
            "buffer": {"hits": self.buffer_hits, "misses": self.buffer_misses},
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }


class QueryTrace:
    """A span-tree recorder bound to one pager stack.

    Parameters
    ----------
    pager:
        The storage stack whose counters the spans snapshot. May be left
        ``None`` and bound later by the first instrumented layer that
        knows its pager (planners do this) — until then spans carry only
        wall time and counters.
    name:
        Root span name.
    """

    def __init__(self, pager=None, name: str = "trace", meta: dict | None = None) -> None:
        self.pager = pager
        self.root = Span(name, dict(meta or {}))
        self._stack: list[Span] = [self.root]
        self._started = time.perf_counter()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, pager=None, **meta):
        """Open a child span of the innermost open span."""
        if pager is not None and self.pager is None:
            self.pager = pager
        node = Span(name, {k: str(v) for k, v in meta.items()})
        parent = self._stack[-1]
        parent.children.append(node)
        self._stack.append(node)
        before_io = self.pager.stats.snapshot() if self.pager is not None else None
        before_hits = self.pager.buffer.hits if self.pager is not None else 0
        before_misses = self.pager.buffer.misses if self.pager is not None else 0
        start = time.perf_counter()
        try:
            yield node
        finally:
            node.elapsed = time.perf_counter() - start
            if before_io is not None:
                node.io = self.pager.stats.delta_since(before_io)
                node.buffer_hits = self.pager.buffer.hits - before_hits
                node.buffer_misses = self.pager.buffer.misses - before_misses
            self._stack.pop()

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Bump a counter on the innermost open span."""
        self._stack[-1].incr(name, amount)

    def close(self) -> Span:
        """Finalise the root span (sums children; idempotent)."""
        root = self.root
        root.elapsed = time.perf_counter() - self._started
        if root.children:
            root.io = IOStats()
            root.buffer_hits = root.buffer_misses = 0
            for child in root.children:
                root.io.logical_reads += child.io.logical_reads
                root.io.logical_writes += child.io.logical_writes
                root.io.physical_reads += child.io.physical_reads
                root.io.physical_writes += child.io.physical_writes
                root.io.allocations += child.io.allocations
                root.io.frees += child.io.frees
                root.buffer_hits += child.buffer_hits
                root.buffer_misses += child.buffer_misses
        return root

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return self.close().to_dict()

    def export_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable span tree (the ``repro trace`` CLI output)."""
        self.close()
        lines: list[str] = []
        _render_span(self.root, "", True, True, lines)
        return "\n".join(lines)


def _render_span(node: Span, prefix: str, is_last: bool, is_root: bool,
                 lines: list[str]) -> None:
    connector = "" if is_root else ("└─ " if is_last else "├─ ")
    label = node.name
    if node.meta:
        label += " [" + " ".join(f"{k}={v}" for k, v in node.meta.items()) + "]"
    stats = (
        f"{node.elapsed * 1000:8.3f} ms  "
        f"{node.pages:5d} pages "
        f"({node.io.logical_reads}r+{node.io.logical_writes}w, "
        f"{node.io.physical_reads + node.io.physical_writes} physical"
    )
    if node.buffer_hits + node.buffer_misses:
        stats += f", hit {node.hit_ratio:.0%}"
    stats += ")"
    if node.counters:
        stats += "  " + " ".join(
            f"{k}={v:g}" for k, v in sorted(node.counters.items())
        )
    lines.append(f"{prefix}{connector}{label:<28s} {stats}")
    child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
    for i, child in enumerate(node.children):
        _render_span(child, child_prefix, i == len(node.children) - 1, False,
                     lines)


# ----------------------------------------------------------------------
# module-level hooks (the hot-path API)
# ----------------------------------------------------------------------
_ACTIVE: QueryTrace | None = None


class _NullSpan:
    """Reusable no-op context manager for the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


def current() -> QueryTrace | None:
    """The active trace, or ``None`` when tracing is disabled."""
    return _ACTIVE


@contextmanager
def tracing(trace: QueryTrace):
    """Activate a trace for the dynamic extent of the block.

    Traces do not nest: activating a second trace raises, because two
    recorders snapshotting one pager would double-charge every access.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a trace is already active")
    _ACTIVE = trace
    try:
        yield trace
    finally:
        _ACTIVE = None
        trace.close()


def span(name: str, pager=None, **meta):
    """Open a span on the active trace; no-op when tracing is disabled."""
    trace = _ACTIVE
    if trace is None:
        return _NULL_SPAN
    return trace.span(name, pager=pager, **meta)


def incr(name: str, amount: float = 1.0) -> None:
    """Bump a counter on the active span; no-op when tracing is disabled."""
    trace = _ACTIVE
    if trace is not None:
        trace.incr(name, amount)
