"""Trace export: Chrome trace-event JSON for Perfetto / ``chrome://tracing``.

:func:`chrome_trace` flattens a :class:`~repro.obs.trace.Span` tree into
the `trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
using *complete* events (``ph: "X"``): one event per span, with ``ts``
and ``dur`` in microseconds relative to the trace start. Spans measured
on different pagers (per-shard sub-queries) are placed on separate
``tid`` lanes, so a sharded query renders as parallel tracks.

:func:`validate_chrome_trace` checks the structural contract the viewers
rely on; the round-trip test in ``tests/obs/test_export.py`` runs every
exported trace through it.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.trace import QueryTrace, Span

#: Event phases this exporter emits (complete events + process metadata).
_EMITTED_PHASES = {"X", "M"}

#: Required keys and their types for a complete ("X") event.
_COMPLETE_EVENT_KEYS: dict[str, type | tuple[type, ...]] = {
    "name": str,
    "cat": str,
    "ph": str,
    "ts": (int, float),
    "dur": (int, float),
    "pid": int,
    "tid": int,
    "args": dict,
}


def _lane_for(token: int | None, lanes: dict[int | None, int]) -> int:
    """Stable small-int ``tid`` per pager token (main pager first)."""
    if token not in lanes:
        lanes[token] = len(lanes)
    return lanes[token]


def chrome_trace(root: Span | QueryTrace, pid: int = 1) -> dict[str, Any]:
    """A ``{"traceEvents": [...]}`` Chrome trace for one span tree.

    Every span becomes one complete event; ``args`` carries the span's
    meta, exclusive/inclusive page counts, buffer hit ratio, and
    counters so Perfetto's slice panel shows the same numbers as
    ``repro explain``.
    """
    if isinstance(root, QueryTrace):
        root = root.close()
    lanes: dict[int | None, int] = {}
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro query engine"},
        }
    ]
    for node in root.walk():
        inclusive = node.inclusive_pages()
        exclusive = inclusive - sum(
            c.inclusive_pages() for c in node.children
        )
        hits, misses = node.inclusive_buffer()
        args: dict[str, Any] = {
            "phase": node.phase,
            "pages_inclusive": inclusive,
            "pages_exclusive": exclusive,
            "buffer_hits": hits,
            "buffer_misses": misses,
        }
        if node.meta:
            args["meta"] = {k: str(v) for k, v in node.meta.items()}
        if node.counters:
            args["counters"] = dict(node.counters)
        events.append(
            {
                "name": node.name,
                "cat": node.phase,
                "ph": "X",
                "ts": node.start * 1e6,
                "dur": node.elapsed * 1e6,
                "pid": pid,
                "tid": _lane_for(node.pager_token, lanes),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: Any) -> list[str]:
    """Structural schema check; returns a list of problems (empty = valid).

    Checks what Perfetto and ``chrome://tracing`` actually require:
    a ``traceEvents`` array whose complete events carry string ``name``/
    ``cat``, numeric non-negative ``ts``/``dur``, integer ``pid``/
    ``tid``, and a dict ``args``.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be an array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _EMITTED_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue
        for key, types in _COMPLETE_EVENT_KEYS.items():
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
            elif not isinstance(ev[key], types):
                problems.append(
                    f"{where}: {key!r} has type {type(ev[key]).__name__}"
                )
        for key in ("ts", "dur"):
            value = ev.get(key)
            if isinstance(value, (int, float)) and value < 0:
                problems.append(f"{where}: {key!r} is negative")
    return problems


def write_chrome_trace(root: Span | QueryTrace, path: str,
                       pid: int = 1) -> dict[str, Any]:
    """Export a span tree to ``path`` as Chrome trace JSON; returns the
    document (already validated — raises ``ValueError`` on a bug)."""
    doc = chrome_trace(root, pid=pid)
    problems = validate_chrome_trace(doc)
    if problems:
        raise ValueError("invalid chrome trace: " + "; ".join(problems))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    return doc
