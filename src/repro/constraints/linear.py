"""Linear constraints over d real variables.

A :class:`LinearConstraint` is the atomic formula of the constraint data
model (paper, Section 2)::

    a_1 x_1 + … + a_d x_d + c  θ  0

Coefficients are stored as a tuple of floats; the dimension is the length
of that tuple. Constraints are immutable and hashable so tuples and
relations can use them in sets and as dictionary keys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.constraints.theta import Theta
from repro.errors import ConstraintError, GeometryError

#: Default absolute tolerance used by point-membership tests.
DEFAULT_TOL = 1e-9


@dataclass(frozen=True)
class LinearConstraint:
    """An immutable linear constraint ``coeffs·x + const θ 0``.

    Parameters
    ----------
    coeffs:
        Coefficients ``(a_1, …, a_d)``; ``d`` is the constraint dimension.
    const:
        The additive constant ``c``.
    theta:
        The comparison operator.
    """

    coeffs: tuple[float, ...]
    const: float
    theta: Theta

    def __init__(
        self,
        coeffs: Sequence[float],
        const: float,
        theta: Theta | str = Theta.LE,
    ) -> None:
        if isinstance(theta, str):
            theta = Theta.from_symbol(theta)
        coeffs_t = tuple(float(a) for a in coeffs)
        if not coeffs_t:
            raise ConstraintError("a constraint needs at least one variable")
        if any(math.isnan(a) or math.isinf(a) for a in coeffs_t):
            raise ConstraintError(f"non-finite coefficient in {coeffs_t}")
        const_f = float(const)
        if math.isnan(const_f) or math.isinf(const_f):
            raise ConstraintError(f"non-finite constant {const!r}")
        object.__setattr__(self, "coeffs", coeffs_t)
        object.__setattr__(self, "const", const_f)
        object.__setattr__(self, "theta", theta)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Number of variables the constraint ranges over."""
        return len(self.coeffs)

    @property
    def is_trivial(self) -> bool:
        """True when every coefficient is zero (constraint is 0-ary)."""
        return all(a == 0.0 for a in self.coeffs)

    @property
    def is_tautology(self) -> bool:
        """True when the constraint holds for every point (e.g. ``0 ≤ 1``)."""
        return self.is_trivial and self.theta.holds(self.const)

    @property
    def is_contradiction(self) -> bool:
        """True when no point satisfies the constraint (e.g. ``1 ≤ 0``)."""
        return self.is_trivial and not self.theta.holds(self.const)

    @property
    def is_vertical(self) -> bool:
        """True when the last coordinate has a zero coefficient.

        The dual transformation (Section 2.1) requires non-vertical
        boundary hyperplanes: ``a_d ≠ 0``.
        """
        return self.coeffs[-1] == 0.0

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def lhs(self, point: Sequence[float]) -> float:
        """Evaluate ``coeffs·point + const``."""
        if len(point) != self.dimension:
            raise ConstraintError(
                f"point of dimension {len(point)} against constraint of "
                f"dimension {self.dimension}"
            )
        return math.fsum(a * x for a, x in zip(self.coeffs, point)) + self.const

    def satisfied_by(self, point: Sequence[float], tol: float = DEFAULT_TOL) -> bool:
        """True when ``point`` satisfies the constraint within ``tol``."""
        return self.theta.holds(self.lhs(point), 0.0, tol)

    # ------------------------------------------------------------------
    # rewriting
    # ------------------------------------------------------------------
    def negated(self) -> "LinearConstraint":
        """The constraint describing the complement region (``¬θ``)."""
        return LinearConstraint(self.coeffs, self.const, self.theta.negated())

    def flipped(self) -> "LinearConstraint":
        """Multiply both sides by ``-1`` (same point set, mirrored form)."""
        return LinearConstraint(
            tuple(-a for a in self.coeffs), -self.const, self.theta.flipped()
        )

    def scaled(self, factor: float) -> "LinearConstraint":
        """Scale by a positive factor (same point set)."""
        if factor <= 0:
            raise ConstraintError("scaling factor must be positive")
        return LinearConstraint(
            tuple(a * factor for a in self.coeffs), self.const * factor, self.theta
        )

    def normalized(self) -> "LinearConstraint":
        """Canonical scaling: the coefficient vector gets unit 2-norm.

        Trivial constraints are returned unchanged. Canonical scaling makes
        syntactically different encodings of the same half-plane compare
        equal after :meth:`canonical_le`.
        """
        norm = math.sqrt(math.fsum(a * a for a in self.coeffs))
        if norm == 0.0:
            return self
        return self.scaled(1.0 / norm)

    def canonical_le(self) -> "LinearConstraint":
        """Rewrite a weak inequality to the ``≤`` direction, unit norm."""
        if self.theta is Theta.GE:
            return self.flipped().normalized()
        if self.theta is Theta.LE:
            return self.normalized()
        raise ConstraintError(
            f"canonical_le requires a weak inequality, got {self.theta}"
        )

    # ------------------------------------------------------------------
    # slope/intercept view (2-D convenience used throughout the index)
    # ------------------------------------------------------------------
    def slope_intercept(self) -> tuple[float, float]:
        """Solve the boundary for the last variable: ``x_d = b·x' + c``.

        For a 2-D constraint ``a x + b y + c θ 0`` with ``b ≠ 0`` this
        returns ``(-a/b, -c/b)``, the slope/intercept of the boundary line.
        For a d-dimensional constraint the first ``d-1`` slope coordinates
        are folded into the returned slope only when ``d == 2``; use
        :meth:`dual_point` for general dimensions.
        """
        if self.dimension != 2:
            raise GeometryError("slope_intercept is a 2-D convenience")
        a, b = self.coeffs
        if b == 0.0:
            raise GeometryError("vertical constraint has no slope/intercept")
        return (-a / b, -self.const / b)

    def dual_point(self) -> tuple[float, ...]:
        """Dual representation of the boundary hyperplane (Section 2.1).

        The hyperplane ``a_1 x_1 + … + a_d x_d + c = 0`` with ``a_d ≠ 0``
        is rewritten ``x_d = b_1 x_1 + … + b_{d-1} x_{d-1} + b_d`` with
        ``b_i = -a_i/a_d`` and ``b_d = -c/a_d``; its dual is the point
        ``(b_1, …, b_d)``.
        """
        a_d = self.coeffs[-1]
        if a_d == 0.0:
            raise GeometryError("vertical hyperplane has no dual point")
        body = tuple(-a / a_d for a in self.coeffs[:-1])
        return body + (-self.const / a_d,)

    # ------------------------------------------------------------------
    # construction helpers & display
    # ------------------------------------------------------------------
    @classmethod
    def from_slope_intercept(
        cls, slope: float, intercept: float, theta: Theta | str
    ) -> "LinearConstraint":
        """Build the 2-D constraint ``y θ slope·x + intercept``.

        Note the operator applies to ``y`` relative to the line, i.e. the
        constraint stored is ``-slope·x + y - intercept θ 0``.
        """
        return cls((-float(slope), 1.0), -float(intercept), theta)

    def substitute(self, values: dict[int, float]) -> "LinearConstraint":
        """Partially evaluate: fix variables ``{index: value}``.

        Returns a constraint over the remaining variables, in their
        original order.
        """
        keep = [i for i in range(self.dimension) if i not in values]
        if not keep:
            raise ConstraintError("cannot substitute every variable away")
        const = self.const + math.fsum(
            self.coeffs[i] * v for i, v in values.items()
        )
        return LinearConstraint(tuple(self.coeffs[i] for i in keep), const, self.theta)

    def __str__(self) -> str:
        terms: list[str] = []
        for i, a in enumerate(self.coeffs):
            if a == 0.0:
                continue
            name = variable_name(i, self.dimension)
            if a == 1.0:
                terms.append(f"+ {name}")
            elif a == -1.0:
                terms.append(f"- {name}")
            elif a < 0:
                terms.append(f"- {abs(a):g}*{name}")
            else:
                terms.append(f"+ {a:g}*{name}")
        if self.const != 0.0 or not terms:
            sign = "-" if self.const < 0 else "+"
            terms.append(f"{sign} {abs(self.const):g}")
        body = " ".join(terms).lstrip("+ ").strip()
        return f"{body} {self.theta} 0"


def variable_name(index: int, dimension: int) -> str:
    """Human-readable variable names: x, y for 2-D; x1..xd otherwise."""
    if dimension == 2:
        return "xy"[index] if index < 2 else f"x{index + 1}"
    return f"x{index + 1}"


def common_dimension(constraints: Iterable[LinearConstraint]) -> int:
    """The shared dimension of a collection of constraints.

    Raises :class:`ConstraintError` on an empty collection or a dimension
    mismatch.
    """
    dim = 0
    for constraint in constraints:
        if dim == 0:
            dim = constraint.dimension
        elif constraint.dimension != dim:
            raise ConstraintError(
                f"mixed constraint dimensions {dim} and {constraint.dimension}"
            )
    if dim == 0:
        raise ConstraintError("empty constraint collection")
    return dim
