"""Generalized tuples: conjunctions of linear constraints.

A *generalized tuple* (paper, Section 2) finitely represents a possibly
infinite set of relational tuples — geometrically, a convex polyhedron in
``E^d`` called the tuple's *extension*. This module keeps the symbolic
side; the geometric side (vertices, rays, support values) lives in
``repro.geometry`` and is reached through :meth:`GeneralizedTuple.extension`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.constraints.linear import LinearConstraint, common_dimension
from repro.constraints.normalize import normalize
from repro.errors import ConstraintError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.geometry.polyhedron import ConvexPolyhedron


class GeneralizedTuple:
    """An immutable conjunction of weak linear inequalities.

    Construction normalises the atoms (equalities split, strict operators
    closed, tautologies dropped — see ``repro.constraints.normalize``).

    Parameters
    ----------
    constraints:
        The conjuncts. Must share one dimension.
    label:
        Optional application-level identifier carried around by examples
        and the heap file (not used by the index logic).
    """

    __slots__ = ("_atoms", "_dimension", "_contradictory", "_extension", "label")

    def __init__(
        self,
        constraints: Iterable[LinearConstraint],
        label: str | None = None,
    ) -> None:
        raw = tuple(constraints)
        if not raw:
            raise ConstraintError("a generalized tuple needs at least one atom")
        dimension = common_dimension(raw)
        atoms, contradictory = normalize(raw)
        self._atoms = atoms
        self._dimension = dimension
        self._contradictory = contradictory
        self._extension: "ConvexPolyhedron | None" = None
        self.label = label

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def constraints(self) -> tuple[LinearConstraint, ...]:
        """The canonical conjuncts (weak inequalities)."""
        return self._atoms

    @property
    def dimension(self) -> int:
        """Dimension ``d`` of the space the tuple lives in."""
        return self._dimension

    @property
    def syntactically_false(self) -> bool:
        """True when normalisation already proved the tuple unsatisfiable."""
        return self._contradictory

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[LinearConstraint]:
        return iter(self._atoms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GeneralizedTuple):
            return NotImplemented
        return (
            self._dimension == other._dimension
            and self._contradictory == other._contradictory
            and self._atoms == other._atoms
        )

    def __hash__(self) -> int:
        return hash((self._dimension, self._contradictory, self._atoms))

    def __repr__(self) -> str:
        body = " and ".join(str(c) for c in self._atoms) or "false"
        name = f" label={self.label!r}" if self.label else ""
        return f"<GeneralizedTuple{name} {body}>"

    # ------------------------------------------------------------------
    # geometry bridge
    # ------------------------------------------------------------------
    def extension(self) -> "ConvexPolyhedron":
        """The convex polyhedron of solutions (cached)."""
        if self._extension is None:
            from repro.geometry.polyhedron import ConvexPolyhedron

            self._extension = ConvexPolyhedron(self)
        return self._extension

    def is_satisfiable(self) -> bool:
        """True when the extension is non-empty."""
        if self._contradictory:
            return False
        return not self.extension().is_empty

    def satisfied_by(self, point: Sequence[float], tol: float = 1e-9) -> bool:
        """Point membership in the extension."""
        if self._contradictory:
            return False
        return all(atom.satisfied_by(point, tol) for atom in self._atoms)

    def conjoin(self, other: "GeneralizedTuple") -> "GeneralizedTuple":
        """The tuple representing the intersection of the two extensions."""
        if other.dimension != self.dimension:
            raise ConstraintError(
                f"cannot conjoin tuples of dimension {self.dimension} "
                f"and {other.dimension}"
            )
        return GeneralizedTuple(self._atoms + other._atoms, label=self.label)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_box(
        cls,
        lows: Sequence[float],
        highs: Sequence[float],
        label: str | None = None,
    ) -> "GeneralizedTuple":
        """Axis-aligned box ``lows ≤ x ≤ highs`` as a generalized tuple."""
        if len(lows) != len(highs):
            raise ConstraintError("lows/highs length mismatch")
        d = len(lows)
        atoms: list[LinearConstraint] = []
        for i, (lo, hi) in enumerate(zip(lows, highs)):
            if lo > hi:
                raise ConstraintError(f"empty box: lows[{i}] > highs[{i}]")
            unit = tuple(1.0 if j == i else 0.0 for j in range(d))
            atoms.append(LinearConstraint(unit, -float(hi), "<="))
            atoms.append(LinearConstraint(unit, -float(lo), ">="))
        return cls(atoms, label=label)

    @classmethod
    def from_vertices_2d(
        cls,
        vertices: Sequence[Sequence[float]],
        label: str | None = None,
    ) -> "GeneralizedTuple":
        """Convex polygon from its 2-D vertices (hull of the input points).

        Builds one half-plane per hull edge, oriented to keep the polygon
        inside. Degenerate inputs (all points collinear or coincident) are
        rejected, matching the paper's full-dimensional tuples.
        """
        from repro.geometry.hull import convex_hull_2d

        hull = convex_hull_2d([(float(p[0]), float(p[1])) for p in vertices])
        if len(hull) < 3:
            raise ConstraintError(
                "from_vertices_2d needs at least 3 non-collinear vertices"
            )
        points = [(float(p[0]), float(p[1])) for p in vertices]
        atoms = []
        n = len(hull)
        for i in range(n):
            (x1, y1), (x2, y2) = hull[i], hull[(i + 1) % n]
            # Inward half-plane for CCW hull edge (x1,y1)->(x2,y2):
            # cross((x2-x1, y2-y1), (x-x1, y-y1)) >= 0. The constant is
            # taken from the *input* points' support so that every input
            # point is contained even when the hull's collinearity
            # tolerance trimmed a near-degenerate vertex.
            a = -(y2 - y1)
            b = x2 - x1
            c = -min(a * px + b * py for px, py in points)
            atoms.append(LinearConstraint((a, b), c, ">="))
        return cls(atoms, label=label)
