"""Generalized relations: ordered collections of generalized tuples.

A *generalized relation* (paper, Section 2) is a set of generalized
tuples. This in-memory representation assigns each tuple a stable integer
id — the identity the index structures and the heap file agree on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.constraints.tuples import GeneralizedTuple
from repro.errors import ConstraintError


class GeneralizedRelation:
    """A collection of same-dimension generalized tuples with stable ids.

    Ids are dense on construction and never reused after a delete, so they
    can serve as external keys (RIDs map to them in the heap file).
    """

    def __init__(
        self,
        tuples: Iterable[GeneralizedTuple] = (),
        name: str = "r",
    ) -> None:
        self.name = name
        self._tuples: dict[int, GeneralizedTuple] = {}
        self._dimension: int | None = None
        self._next_id = 0
        for t in tuples:
            self.add(t)

    # ------------------------------------------------------------------
    # collection protocol
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Dimension of the stored tuples (0 when the relation is empty)."""
        return self._dimension or 0

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[tuple[int, GeneralizedTuple]]:
        return iter(sorted(self._tuples.items()))

    def __contains__(self, tuple_id: int) -> bool:
        return tuple_id in self._tuples

    def ids(self) -> Sequence[int]:
        """All live tuple ids, ascending."""
        return sorted(self._tuples)

    def get(self, tuple_id: int) -> GeneralizedTuple:
        """Tuple by id; raises :class:`ConstraintError` on a dead id."""
        try:
            return self._tuples[tuple_id]
        except KeyError:
            raise ConstraintError(
                f"no tuple with id {tuple_id} in relation {self.name!r}"
            ) from None

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, t: GeneralizedTuple) -> int:
        """Insert a tuple; returns its new id."""
        if self._dimension is None:
            self._dimension = t.dimension
        elif t.dimension != self._dimension:
            raise ConstraintError(
                f"tuple of dimension {t.dimension} into relation of "
                f"dimension {self._dimension}"
            )
        tuple_id = self._next_id
        self._next_id += 1
        self._tuples[tuple_id] = t
        return tuple_id

    def remove(self, tuple_id: int) -> GeneralizedTuple:
        """Delete a tuple by id; returns the removed tuple."""
        t = self.get(tuple_id)
        del self._tuples[tuple_id]
        return t

    # ------------------------------------------------------------------
    # bulk helpers
    # ------------------------------------------------------------------
    def extend(self, tuples: Iterable[GeneralizedTuple]) -> list[int]:
        """Insert many tuples; returns their ids in input order."""
        return [self.add(t) for t in tuples]

    def subset(self, ids: Iterable[int], name: str | None = None) -> "GeneralizedRelation":
        """A new relation holding the given tuples *under their current
        ids* (unlike the constructor, which renumbers densely).

        Shard partitioning depends on this: every shard indexes its
        tuples by the global id, so merged answer sets need no
        translation. ``_next_id`` is preserved, keeping future ``add``
        ids disjoint from the parent's.
        """
        out = GeneralizedRelation(name=name if name is not None else self.name)
        out._dimension = self._dimension
        out._next_id = self._next_id
        for tuple_id in ids:
            out._tuples[tuple_id] = self.get(tuple_id)
        return out

    def satisfiable_only(self) -> "GeneralizedRelation":
        """A new relation keeping only tuples with non-empty extensions.

        The paper's experiments index satisfiable tuples; generators use
        this to discard the occasional degenerate draw.
        """
        return GeneralizedRelation(
            (t for _, t in self if t.is_satisfiable()), name=self.name
        )

    def __repr__(self) -> str:
        return (
            f"<GeneralizedRelation {self.name!r} dim={self.dimension} "
            f"tuples={len(self)}>"
        )
