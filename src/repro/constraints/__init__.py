"""Constraint data model: operators, linear constraints, tuples, relations.

This package implements the symbolic layer of the paper's data model
(Section 2): linear constraints ``a·x + c θ 0``, generalized tuples
(conjunctions, extensions are convex polyhedra) and generalized relations
(sets of tuples with stable ids).
"""

from repro.constraints.linear import LinearConstraint, variable_name
from repro.constraints.normalize import deduplicate_canonical, normalize
from repro.constraints.parser import parse_constraint, parse_tuple, parse_tuples
from repro.constraints.relation import GeneralizedRelation
from repro.constraints.theta import Theta
from repro.constraints.tuples import GeneralizedTuple

__all__ = [
    "Theta",
    "LinearConstraint",
    "GeneralizedTuple",
    "GeneralizedRelation",
    "normalize",
    "deduplicate_canonical",
    "parse_constraint",
    "parse_tuple",
    "parse_tuples",
    "variable_name",
]
