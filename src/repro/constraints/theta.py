"""Comparison operators for linear constraints.

The paper (Section 2) allows ``θ ∈ {=, ≠, ≤, <, ≥, >}`` but works with the
closed subset ``{=, ≤, ≥}``, replacing each equality by a conjunction of
the two weak inequalities. :class:`Theta` models the full operator set so
that the normalisation step (``repro.constraints.normalize``) can rewrite
tuples into the canonical weak-inequality form used by the index.
"""

from __future__ import annotations

import enum

from repro.errors import ConstraintError


class Theta(enum.Enum):
    """A comparison operator in a linear constraint ``a·x + c θ 0``."""

    EQ = "="
    NE = "!="
    LE = "<="
    LT = "<"
    GE = ">="
    GT = ">"

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    @property
    def is_weak_inequality(self) -> bool:
        """True for the two operators the canonical form allows (≤, ≥)."""
        return self in (Theta.LE, Theta.GE)

    @property
    def is_strict(self) -> bool:
        """True for ``<``, ``>`` and ``≠``."""
        return self in (Theta.LT, Theta.GT, Theta.NE)

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def negated(self) -> "Theta":
        """The operator written ``¬θ`` in the paper's Table 1.

        The paper defines ``¬θ`` only for the weak inequalities: ``¬≥ = ≤``
        and ``¬≤ = ≥``.  We extend it to the natural complement-flip for
        the remaining operators.
        """
        return _NEGATED[self]

    def flipped(self) -> "Theta":
        """The operator after multiplying both constraint sides by ``-1``."""
        return _FLIPPED[self]

    def closure(self) -> "Theta":
        """The weak form of a strict operator (``<`` → ``≤``, ``>`` → ``≥``)."""
        if self is Theta.LT:
            return Theta.LE
        if self is Theta.GT:
            return Theta.GE
        return self

    def holds(self, lhs: float, rhs: float = 0.0, tol: float = 0.0) -> bool:
        """Evaluate ``lhs θ rhs`` with an absolute tolerance ``tol``.

        ``tol`` loosens non-strict comparisons and tightens strict ones,
        which is the safe direction for geometric predicates.
        """
        diff = lhs - rhs
        if self is Theta.EQ:
            return abs(diff) <= tol
        if self is Theta.NE:
            return abs(diff) > tol
        if self is Theta.LE:
            return diff <= tol
        if self is Theta.LT:
            return diff < -tol
        if self is Theta.GE:
            return diff >= -tol
        if self is Theta.GT:
            return diff > tol
        raise ConstraintError(f"unknown operator {self!r}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @classmethod
    def from_symbol(cls, symbol: str) -> "Theta":
        """Parse an operator symbol (accepts unicode ≤ ≥ ≠ as well)."""
        normalized = _SYMBOL_ALIASES.get(symbol.strip(), symbol.strip())
        for member in cls:
            if member.value == normalized:
                return member
        raise ConstraintError(f"unknown comparison operator {symbol!r}")


_NEGATED = {
    Theta.EQ: Theta.NE,
    Theta.NE: Theta.EQ,
    Theta.LE: Theta.GE,
    Theta.GE: Theta.LE,
    Theta.LT: Theta.GT,
    Theta.GT: Theta.LT,
}

# Multiplying "expr θ 0" by -1 keeps =, != and mirrors the order operators.
_FLIPPED = {
    Theta.EQ: Theta.EQ,
    Theta.NE: Theta.NE,
    Theta.LE: Theta.GE,
    Theta.GE: Theta.LE,
    Theta.LT: Theta.GT,
    Theta.GT: Theta.LT,
}

_SYMBOL_ALIASES = {
    "≤": "<=",
    "≥": ">=",
    "≠": "!=",
    "=<": "<=",
    "=>": ">=",
    "==": "=",
    "<>": "!=",
}
