"""Normalisation of constraint conjunctions into canonical tuple form.

The paper assumes ``θ ∈ {=, ≤, ≥}`` and replaces each equality
``expr = 0`` by ``expr ≥ 0 ∧ expr ≤ 0`` (Section 2). Generalized tuples in
this library therefore hold only weak inequalities. :func:`normalize`
performs this rewriting and additionally:

* drops tautological constraints (``0 ≤ 1``),
* collapses the whole conjunction to a contradiction marker if any atom is
  contradictory (``1 ≤ 0``),
* closes strict inequalities to their weak counterparts (the topological
  closure — the standard move for indexing purposes, where measure-zero
  boundaries do not affect containment/intersection up to tolerance),
* removes exact duplicates while preserving order.

``≠`` constraints describe non-convex regions and are rejected: the dual
representation of the paper is defined for convex polyhedra only.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.constraints.linear import LinearConstraint
from repro.constraints.theta import Theta
from repro.errors import ConstraintError


def normalize(
    constraints: Iterable[LinearConstraint],
) -> tuple[tuple[LinearConstraint, ...], bool]:
    """Canonicalise a conjunction of constraints.

    Returns
    -------
    (atoms, contradictory):
        ``atoms`` is the canonical sequence of weak inequalities;
        ``contradictory`` is True when the conjunction is syntactically
        unsatisfiable (a trivially false atom was present). A geometric
        emptiness test still has to be run on the atoms (the conjunction
        may be unsatisfiable without containing a trivially false atom).
    """
    atoms: list[LinearConstraint] = []
    seen: set[tuple[tuple[float, ...], float, Theta]] = set()
    contradictory = False

    for constraint in constraints:
        for weak in _weaken(constraint):
            if weak.is_tautology:
                continue
            if weak.is_contradiction:
                contradictory = True
                continue
            key = (weak.coeffs, weak.const, weak.theta)
            if key in seen:
                continue
            seen.add(key)
            atoms.append(weak)
    return tuple(atoms), contradictory


def _weaken(constraint: LinearConstraint) -> Sequence[LinearConstraint]:
    """Rewrite one atom into zero or more weak inequalities."""
    theta = constraint.theta
    if theta is Theta.NE:
        raise ConstraintError(
            "'!=' constraints describe non-convex regions; generalized "
            "tuples must be convex (split the disjunction at a higher level)"
        )
    if theta is Theta.EQ:
        return (
            LinearConstraint(constraint.coeffs, constraint.const, Theta.GE),
            LinearConstraint(constraint.coeffs, constraint.const, Theta.LE),
        )
    if theta.is_strict:
        return (
            LinearConstraint(constraint.coeffs, constraint.const, theta.closure()),
        )
    return (constraint,)


def deduplicate_canonical(
    constraints: Sequence[LinearConstraint],
) -> tuple[LinearConstraint, ...]:
    """Remove constraints that are scalar multiples of an earlier one.

    Operates on weak inequalities only; two constraints are considered the
    same half-plane when their :meth:`LinearConstraint.canonical_le` forms
    agree within a small tolerance.
    """
    result: list[LinearConstraint] = []
    canon: list[LinearConstraint] = []
    for constraint in constraints:
        c = constraint.canonical_le()
        duplicate = any(_close(c, other) for other in canon)
        if not duplicate:
            result.append(constraint)
            canon.append(c)
    return tuple(result)


def _close(a: LinearConstraint, b: LinearConstraint, tol: float = 1e-12) -> bool:
    if len(a.coeffs) != len(b.coeffs):
        return False
    if abs(a.const - b.const) > tol:
        return False
    return all(abs(x - y) <= tol for x, y in zip(a.coeffs, b.coeffs))
