"""A small text parser for linear constraints and generalized tuples.

Accepted grammar (informally)::

    tuple       :=  constraint ( ('and' | '&' | ',' | '∧') constraint )*
    constraint  :=  expr OP expr
    OP          :=  '<=' | '>=' | '<' | '>' | '=' | '==' | '!=' | unicode ≤ ≥ ≠
    expr        :=  term ( ('+' | '-') term )*
    term        :=  number | variable | number '*'? variable
    variable    :=  'x' | 'y' | 'z' | 'x1' … 'x9' …

Variables map to coordinates: in explicit ``xN`` form, ``xN`` is coordinate
``N-1``; the short names ``x, y, z`` are coordinates 0, 1, 2. The tuple's
dimension is the smallest d covering every variable mentioned, or can be
forced with the ``dimension`` argument.

Examples
--------
>>> parse_tuple("x <= 2 and y >= 3").constraints
(...)
>>> parse_constraint("y >= 0.5x - 1", dimension=2)
LinearConstraint(...)
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.constraints.linear import LinearConstraint
from repro.constraints.theta import Theta
from repro.constraints.tuples import GeneralizedTuple
from repro.errors import ParseError

_OP_RE = re.compile(r"(<=|>=|==|!=|<>|=<|=>|≤|≥|≠|<|>|=)")
_TERM_RE = re.compile(
    r"""
    \s*(?P<sign>[+-]?)\s*
    (?:
        (?P<coeff>\d+(?:\.\d*)?|\.\d+)\s*\*?\s*(?P<var1>[a-wyzA-WYZ]\w*|x\d*)
      | (?P<var2>[a-wyzA-WYZ]\w*|x\d*)
      | (?P<num>\d+(?:\.\d*)?|\.\d+)
    )
    \s*
    """,
    re.VERBOSE,
)

_SHORT_NAMES = {"x": 0, "y": 1, "z": 2, "t": 0, "u": 3, "v": 4, "w": 5}
_SPLIT_RE = re.compile(r"\band\b|&&|&|,|∧", re.IGNORECASE)


def parse_constraint(text: str, dimension: int | None = None) -> LinearConstraint:
    """Parse one linear constraint from text.

    When ``dimension`` is None, the dimension is inferred from the highest
    variable index used (minimum 1).
    """
    parts = _OP_RE.split(text)
    if len(parts) != 3:
        raise ParseError(
            f"expected exactly one comparison operator in {text!r}, "
            f"found {max(0, (len(parts) - 1) // 2)}"
        )
    lhs_text, op_text, rhs_text = parts
    theta = Theta.from_symbol(op_text)
    lhs = _parse_expr(lhs_text)
    rhs = _parse_expr(rhs_text)
    # Move everything to the left: lhs - rhs θ 0.
    coeffs: dict[int, float] = dict(lhs[0])
    for idx, value in rhs[0].items():
        coeffs[idx] = coeffs.get(idx, 0.0) - value
    const = lhs[1] - rhs[1]

    max_index = max(coeffs, default=-1)
    if dimension is None:
        dimension = max(max_index + 1, 1)
    elif max_index >= dimension:
        raise ParseError(
            f"constraint {text!r} uses coordinate {max_index} but "
            f"dimension={dimension}"
        )
    vector = tuple(coeffs.get(i, 0.0) for i in range(dimension))
    return LinearConstraint(vector, const, theta)


def parse_tuple(
    text: str,
    dimension: int | None = None,
    label: str | None = None,
) -> GeneralizedTuple:
    """Parse a conjunction of constraints into a generalized tuple."""
    chunks = [c for c in _SPLIT_RE.split(text) if c.strip()]
    if not chunks:
        raise ParseError(f"no constraints found in {text!r}")
    if dimension is None:
        dimension = max(
            _infer_dimension(chunk) for chunk in chunks
        )
    atoms = [parse_constraint(chunk, dimension=dimension) for chunk in chunks]
    return GeneralizedTuple(atoms, label=label)


def parse_tuples(
    texts: Iterable[str], dimension: int | None = None
) -> list[GeneralizedTuple]:
    """Parse many tuples with a shared (inferred or given) dimension."""
    texts = list(texts)
    if dimension is None:
        dimension = max((_infer_dimension(t) for t in texts), default=1)
    return [parse_tuple(t, dimension=dimension) for t in texts]


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _infer_dimension(text: str) -> int:
    best = 1
    for part in _OP_RE.split(text):
        if _OP_RE.fullmatch(part.strip() or "="):
            continue
        try:
            coeffs, _ = _parse_expr(part)
        except ParseError:
            continue
        if coeffs:
            best = max(best, max(coeffs) + 1)
    return best


def _variable_index(name: str) -> int:
    if re.fullmatch(r"x\d+", name):
        index = int(name[1:]) - 1
        if index < 0:
            raise ParseError(f"variable {name!r}: indices start at x1")
        return index
    key = name.lower()
    if key in _SHORT_NAMES and key != "t":
        return _SHORT_NAMES[key]
    if key == "x":
        return 0
    if key == "t":
        return 0
    raise ParseError(f"unknown variable name {name!r}")


def _parse_expr(text: str) -> tuple[dict[int, float], float]:
    """Parse a linear expression into ({var_index: coeff}, constant)."""
    stripped = text.strip()
    if not stripped:
        raise ParseError("empty expression")
    coeffs: dict[int, float] = {}
    const = 0.0
    pos = 0
    first = True
    while pos < len(stripped):
        match = _TERM_RE.match(stripped, pos)
        if not match or match.end() == pos:
            raise ParseError(
                f"cannot parse expression {stripped!r} at offset {pos}"
            )
        sign_text = match.group("sign")
        if not sign_text and not first:
            raise ParseError(
                f"missing '+'/'-' between terms in {stripped!r} at {pos}"
            )
        sign = -1.0 if sign_text == "-" else 1.0
        if match.group("num") is not None:
            const += sign * float(match.group("num"))
        else:
            if match.group("var1") is not None:
                coeff = sign * float(match.group("coeff"))
                name = match.group("var1")
            else:
                coeff = sign
                name = match.group("var2")
            index = _variable_index(name)
            coeffs[index] = coeffs.get(index, 0.0) + coeff
        pos = match.end()
        first = False
    coeffs = {i: c for i, c in coeffs.items() if c != 0.0}
    return coeffs, const
