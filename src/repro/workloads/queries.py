"""Selectivity-calibrated half-plane query generation (Section 5).

The paper evaluates six ALL and six EXIST queries per configuration with
selectivities between 5 % and 60 %, reporting the 10–15 % band. Because a
half-plane query's answer is a quantile cut of the relation's TOP/BOT
values (Proposition 2.2), target selectivities can be hit *exactly*: the
generator computes the relevant surface values once per slope and places
the intercept at the matching order statistic.
"""

from __future__ import annotations

import math
import random

from repro.constraints.relation import GeneralizedRelation
from repro.constraints.theta import Theta
from repro.core.query import ALL, EXIST, HalfPlaneQuery
from repro.errors import QueryError
from repro.geometry import dual
from repro.workloads.generator import random_edge_angles


def surface_values(
    relation: GeneralizedRelation, slope: float, which: str
) -> list[float]:
    """Sorted ``TOP``/``BOT`` values of every satisfiable tuple."""
    values = []
    for _tid, t in relation:
        poly = t.extension()
        if poly.is_empty:
            continue
        v = dual.top(poly, slope) if which == "top" else dual.bot(poly, slope)
        assert v is not None
        values.append(v)
    values.sort()
    return values


def intercept_for_selectivity(
    relation: GeneralizedRelation,
    query_type: str,
    slope: float,
    theta: Theta,
    selectivity: float,
) -> float:
    """The intercept whose query selects ~``selectivity`` of the relation.

    Uses Proposition 2.2: e.g. EXIST(q(>=)) selects tuples with
    ``TOP >= b``, so ``b`` is placed at the ``1 - selectivity`` order
    statistic of the TOP values (midpoint between neighbours to avoid
    boundary ties).
    """
    if not 0.0 < selectivity < 1.0:
        raise QueryError("selectivity must be in (0, 1)")
    if query_type == EXIST:
        which = "top" if theta is Theta.GE else "bot"
    else:
        which = "bot" if theta is Theta.GE else "top"
    values = surface_values(relation, slope, which)
    if not values:
        raise QueryError("relation has no satisfiable tuples")
    n = len(values)
    want = max(1, min(n, round(selectivity * n)))
    if theta is Theta.GE:
        # tuples with value >= b qualify: take the want-th from the top.
        index = n - want
        lo = values[index - 1] if index > 0 else values[0] - 1.0
        hi = values[index]
    else:
        index = want - 1
        lo = values[index]
        hi = values[index + 1] if index + 1 < n else values[index] + 1.0
    mid = (lo + hi) / 2.0
    if not math.isfinite(mid):
        # Order statistics at ±inf (unbounded tuples): nudge inside.
        mid = lo if math.isfinite(lo) else hi
        if not math.isfinite(mid):
            mid = 0.0
    return mid


def random_query(
    relation: GeneralizedRelation,
    rng: random.Random,
    query_type: str | None = None,
    theta: Theta | None = None,
    selectivity: tuple[float, float] = (0.10, 0.15),
    slope_range: tuple[float, float] | None = None,
) -> HalfPlaneQuery:
    """One selectivity-calibrated query with a random slope/type.

    ``slope_range`` restricts the angular coefficient (e.g. to the
    interior of the slope set); by default the slope is ``tan`` of a
    uniform non-vertical angle, like the data's constraint boundaries.
    """
    if query_type is None:
        query_type = rng.choice([ALL, EXIST])
    if theta is None:
        theta = rng.choice([Theta.GE, Theta.LE])
    if slope_range is None:
        slope = math.tan(random_edge_angles(rng, 1)[0])
    else:
        slope = rng.uniform(*slope_range)
    sel = rng.uniform(*selectivity)
    intercept = intercept_for_selectivity(
        relation, query_type, slope, theta, sel
    )
    return HalfPlaneQuery(query_type, slope, intercept, theta)


def make_queries(
    relation: GeneralizedRelation,
    count: int,
    query_type: str,
    seed: int = 0,
    selectivity: tuple[float, float] = (0.10, 0.15),
    slope_range: tuple[float, float] | None = None,
) -> list[HalfPlaneQuery]:
    """``count`` queries of one type (the paper uses six per type)."""
    rng = random.Random(seed)
    return [
        random_query(
            relation,
            rng,
            query_type=query_type,
            selectivity=selectivity,
            slope_range=slope_range,
        )
        for _ in range(count)
    ]


def actual_selectivity(
    relation: GeneralizedRelation, query: HalfPlaneQuery
) -> float:
    """Measured selectivity of a query (oracle-evaluated)."""
    from repro.geometry.predicates import evaluate_relation

    if len(relation) == 0:
        return 0.0
    answer = evaluate_relation(
        relation, query.query_type, query.slope_2d, query.intercept, query.theta
    )
    return len(answer) / len(relation)
