"""The working window of the paper's experiments (Section 5).

Tuples' weight centres are uniformly distributed in the window
``[-50, 50] × [-50, 50]``; object sizes are expressed as fractions of the
area of ``R``, the bounding rectangle of all generated tuples (≈ the
window inflated by the object radii).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Window:
    """An axis-aligned working window."""

    xmin: float = -50.0
    ymin: float = -50.0
    xmax: float = 50.0
    ymax: float = 50.0

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, x: float, y: float) -> bool:
        """Closed-window membership."""
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax


#: The paper's window.
PAPER_WINDOW = Window()
