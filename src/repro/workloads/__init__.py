"""Section 5 workloads: polygon/query generators and the working window."""

from repro.workloads.generator import (
    SIZE_CLASSES,
    bounding_rect_of,
    make_relation,
    polygon_tuple,
    random_edge_angles,
    unbounded_tuple,
)
from repro.workloads.queries import (
    actual_selectivity,
    intercept_for_selectivity,
    make_queries,
    random_query,
    surface_values,
)
from repro.workloads.skew import (
    skewed_queries,
    skewed_slopes,
    uniform_queries,
    uniform_slopes,
)
from repro.workloads.window import PAPER_WINDOW, Window

__all__ = [
    "Window",
    "PAPER_WINDOW",
    "SIZE_CLASSES",
    "make_relation",
    "polygon_tuple",
    "unbounded_tuple",
    "random_edge_angles",
    "bounding_rect_of",
    "make_queries",
    "random_query",
    "intercept_for_selectivity",
    "surface_values",
    "actual_selectivity",
    "skewed_queries",
    "skewed_slopes",
    "uniform_queries",
    "uniform_slopes",
]
