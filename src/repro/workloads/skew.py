"""Skewed-vs-uniform query slope families (the tuning ablation traffic).

The adaptive-tuning story (ROADMAP item 4, ``repro tune``) needs
traffic whose slope distribution the build-time slope set did *not*
anticipate: real constraint workloads concentrate on a handful of
application-specific trade-off directions (cf. the skewed user
preferences driving reverse top-k indexing). This module generates
both ends of the spectrum with the same selectivity calibration as
:mod:`repro.workloads.queries`, so fixed-``S`` and learned-``S``
engines answer *identical* query sets and only the page counts differ:

* ``uniform`` — slopes are ``tan`` of uniform non-vertical angles
  (exactly the distribution :func:`random_query` draws and
  ``uniform_angles`` optimises for);
* ``skewed`` — most queries *repeat* one of a few preferred exact
  directions drawn away from the build-time set (canned application
  queries: the same trade-off line asked again and again), with a
  small uniform background. Repetition matters: a slope inside the
  restricted set answers on the cheap exact path, while any
  non-member interior slope pays the T2 handicap sweep whose length
  is set by the enclosing *strip*, not by the distance to the anchor
  — so the entire tuning win comes from the learner promoting the
  popular directions into ``S``. ``spread`` > 0 jitters the hot
  directions instead (the continuous variant; the win is then bounded
  by strip narrowing alone).

>>> import random
>>> from repro.workloads.generator import make_relation
>>> from repro.workloads.skew import skewed_queries, uniform_queries
>>> r = make_relation(60, "small", seed=5)
>>> sq = skewed_queries(r, 10, seed=5)
>>> uq = uniform_queries(r, 10, seed=5)
>>> len(sq), len(uq)
(10, 10)
"""

from __future__ import annotations

import math
import random

from repro.constraints.relation import GeneralizedRelation
from repro.constraints.theta import Theta
from repro.core.query import ALL, EXIST, HalfPlaneQuery
from repro.workloads.generator import random_edge_angles
from repro.workloads.queries import intercept_for_selectivity

#: Default preferred query directions of the skewed family, as angles
#: (radians). Chosen to sit *between* the members of the benchmarks'
#: default ``uniform_angles`` sets — worst case for a build-time S,
#: best case for a learner.
DEFAULT_HOT_ANGLES = (-0.95, 0.35, 1.15)

#: Angular jitter around each preferred direction (std dev, radians).
#: 0 means hot queries repeat the preferred slopes *exactly* — the
#: canned-query model the tuner is built for.
DEFAULT_SPREAD = 0.0

#: Fraction of skewed traffic that stays background-uniform.
DEFAULT_BACKGROUND = 0.1


def skewed_slopes(
    rng: random.Random,
    count: int,
    hot_angles: tuple[float, ...] = DEFAULT_HOT_ANGLES,
    spread: float = DEFAULT_SPREAD,
    background: float = DEFAULT_BACKGROUND,
) -> list[float]:
    """``count`` slopes concentrated on the preferred directions."""
    limit = math.pi / 2.0 - 0.05
    hot_slopes = [math.tan(a) for a in hot_angles]
    out: list[float] = []
    for _ in range(count):
        if rng.random() < background:
            angle = random_edge_angles(rng, 1)[0]
            out.append(math.tan(max(-limit, min(limit, angle))))
        elif spread:
            angle = rng.gauss(rng.choice(hot_angles), spread)
            out.append(math.tan(max(-limit, min(limit, angle))))
        else:
            out.append(rng.choice(hot_slopes))
    return out


def uniform_slopes(rng: random.Random, count: int) -> list[float]:
    """``count`` slopes as tan of uniform non-vertical angles."""
    return [math.tan(a) for a in random_edge_angles(rng, count)]


def _calibrated(
    relation: GeneralizedRelation,
    slopes: list[float],
    rng: random.Random,
    selectivity: tuple[float, float],
) -> list[HalfPlaneQuery]:
    queries = []
    for slope in slopes:
        query_type = rng.choice([ALL, EXIST])
        theta = rng.choice([Theta.GE, Theta.LE])
        sel = rng.uniform(*selectivity)
        intercept = intercept_for_selectivity(
            relation, query_type, slope, theta, sel
        )
        queries.append(HalfPlaneQuery(query_type, slope, intercept, theta))
    return queries


def skewed_queries(
    relation: GeneralizedRelation,
    count: int,
    seed: int = 0,
    selectivity: tuple[float, float] = (0.10, 0.15),
    hot_angles: tuple[float, ...] = DEFAULT_HOT_ANGLES,
    spread: float = DEFAULT_SPREAD,
    background: float = DEFAULT_BACKGROUND,
) -> list[HalfPlaneQuery]:
    """A selectivity-calibrated query set with skewed slopes."""
    rng = random.Random(f"skew:{seed}")
    slopes = skewed_slopes(rng, count, hot_angles, spread, background)
    return _calibrated(relation, slopes, rng, selectivity)


def uniform_queries(
    relation: GeneralizedRelation,
    count: int,
    seed: int = 0,
    selectivity: tuple[float, float] = (0.10, 0.15),
) -> list[HalfPlaneQuery]:
    """The control family: same calibration, uniform slope angles."""
    rng = random.Random(f"uniform:{seed}")
    slopes = uniform_slopes(rng, count)
    return _calibrated(relation, slopes, rng, selectivity)
