"""Workload generation following Section 5 of the paper.

Each generated tuple is a satisfiable conjunction of **3 to 6 linear
constraints** whose boundary angles are drawn uniformly from
``[0, π/2) ∪ (π/2, π)`` (no vertical edges — the dual transformation
assumes non-vertical hyperplanes). Tuples' weight centres are uniform in
the ``[-50, 50]²`` window. Two size classes are generated:

* ``small``  — polygon area is 1–5 % of the working-window area;
* ``medium`` — polygon area is up to 50 % of the working-window area.

Construction: the edge angles are converted to outward normals and the
polygon is circumscribed around a disc of radius ρ centred at the weight
centre; ρ is then rescaled analytically so the polygon area hits the
sampled target exactly (area scales with ρ²).

A generator of *unbounded* tuples (wedges, slabs, half-planes) is also
provided for the experiments only the dual index can run — the R+-tree
cannot represent them (the paper's Figure 1 argument).
"""

from __future__ import annotations

import math
import random

from repro.constraints.linear import LinearConstraint
from repro.constraints.relation import GeneralizedRelation
from repro.constraints.tuples import GeneralizedTuple
from repro.errors import ConstraintError
from repro.workloads.window import PAPER_WINDOW, Window

#: The paper's size classes, as (min, max) fractions of window area.
SIZE_CLASSES = {
    "small": (0.01, 0.05),
    "medium": (0.05, 0.50),
}

#: Keep-away margin around the vertical angle π/2.
_VERTICAL_MARGIN = 0.06


def random_edge_angles(rng: random.Random, count: int) -> list[float]:
    """``count`` line angles uniform in ``[0, π/2) ∪ (π/2, π)``."""
    angles = []
    while len(angles) < count:
        phi = rng.uniform(0.0, math.pi)
        if abs(phi - math.pi / 2) < _VERTICAL_MARGIN:
            continue
        angles.append(phi)
    return angles


def polygon_tuple(
    rng: random.Random,
    center: tuple[float, float],
    target_area: float,
    num_edges: int | None = None,
    label: str | None = None,
) -> GeneralizedTuple | None:
    """One bounded polygon tuple with the exact target area.

    Returns ``None`` when the random edge angles cannot bound a polygon
    (all normals in one half-circle) — the caller redraws.
    """
    if num_edges is None:
        num_edges = rng.randint(3, 6)
    angles = random_edge_angles(rng, num_edges)
    # Outward normals: each edge angle yields a normal at ±90°; pick the
    # side at random so normals spread around the circle.
    normals = []
    for phi in angles:
        psi = phi + (math.pi / 2 if rng.random() < 0.5 else -math.pi / 2)
        normals.append((math.cos(psi), math.sin(psi)))
    if not _normals_bound_polygon(normals, max_gap=_MAX_NORMAL_GAP):
        return None
    cx, cy = center
    atoms = [
        LinearConstraint((nx, ny), -(nx * cx + ny * cy) - 1.0, "<=")
        for nx, ny in normals
    ]
    try:
        t = GeneralizedTuple(atoms, label=label)
    except ConstraintError:
        return None
    poly = t.extension()
    if poly.is_empty or not poly.is_bounded:
        return None
    area = poly.area()
    if area <= 0.0:
        return None
    scale = math.sqrt(target_area / area)
    scaled = [
        LinearConstraint(
            (nx, ny), -(nx * cx + ny * cy) - scale, "<="
        )
        for nx, ny in normals
    ]
    result = GeneralizedTuple(scaled, label=label)
    if not result.is_satisfiable():
        return None
    return result


#: Maximum angular gap between consecutive outward normals. π would
#: merely guarantee boundedness; anything close to π yields sliver
#: polygons of unbounded aspect ratio. 0.75π caps the circumscribed
#: polygon's diameter at a small multiple of its inradius, matching the
#: compact ("rectangle-like") objects of the paper's experiments.
_MAX_NORMAL_GAP = 0.75 * math.pi


def _normals_bound_polygon(
    normals: list[tuple[float, float]], max_gap: float = math.pi - 1e-9
) -> bool:
    """True when no angular gap between normals reaches ``max_gap``.

    A gap below π makes the circumscribed polygon bounded; a tighter
    bound additionally caps its aspect ratio."""
    angles = sorted(math.atan2(ny, nx) for nx, ny in normals)
    gaps = [
        angles[(i + 1) % len(angles)] - angles[i]
        for i in range(len(angles) - 1)
    ]
    gaps.append(2 * math.pi - (angles[-1] - angles[0]))
    return max(gaps) < max_gap


def unbounded_tuple(
    rng: random.Random,
    window: Window = PAPER_WINDOW,
    label: str | None = None,
) -> GeneralizedTuple:
    """A random unbounded tuple: half-plane, slab, or wedge."""
    kind = rng.choice(["halfplane", "slab", "wedge"])
    cx = rng.uniform(window.xmin, window.xmax)
    cy = rng.uniform(window.ymin, window.ymax)
    phi = random_edge_angles(rng, 1)[0]
    slope = math.tan(phi)
    if kind == "halfplane":
        theta = rng.choice(["<=", ">="])
        return GeneralizedTuple(
            [LinearConstraint.from_slope_intercept(slope, cy - slope * cx, theta)],
            label=label,
        )
    if kind == "slab":
        width = rng.uniform(1.0, 15.0)
        b = cy - slope * cx
        return GeneralizedTuple(
            [
                LinearConstraint.from_slope_intercept(slope, b - width / 2, ">="),
                LinearConstraint.from_slope_intercept(slope, b + width / 2, "<="),
            ],
            label=label,
        )
    slope2 = math.tan(random_edge_angles(rng, 1)[0])
    theta = rng.choice(["<=", ">="])
    return GeneralizedTuple(
        [
            LinearConstraint.from_slope_intercept(slope, cy - slope * cx, theta),
            LinearConstraint.from_slope_intercept(slope2, cy - slope2 * cx, theta),
        ],
        label=label,
    )


def make_relation(
    n: int,
    size_class: str = "small",
    seed: int = 0,
    window: Window = PAPER_WINDOW,
    name: str | None = None,
    unbounded_fraction: float = 0.0,
) -> GeneralizedRelation:
    """A Section 5 relation: ``n`` satisfiable tuples of one size class.

    ``unbounded_fraction`` > 0 mixes in unbounded tuples (dual-index-only
    experiments).
    """
    if size_class not in SIZE_CLASSES:
        raise ConstraintError(
            f"size_class must be one of {sorted(SIZE_CLASSES)}, got {size_class!r}"
        )
    lo, hi = SIZE_CLASSES[size_class]
    rng = random.Random(seed)
    relation = GeneralizedRelation(
        name=name or f"{size_class}-{n}-seed{seed}"
    )
    while len(relation) < n:
        if unbounded_fraction and rng.random() < unbounded_fraction:
            relation.add(unbounded_tuple(rng, window))
            continue
        center = (
            rng.uniform(window.xmin, window.xmax),
            rng.uniform(window.ymin, window.ymax),
        )
        target_area = window.area * rng.uniform(lo, hi)
        t = polygon_tuple(rng, center, target_area)
        if t is not None:
            relation.add(t)
    return relation


def bounding_rect_of(relation: GeneralizedRelation) -> tuple[float, float, float, float]:
    """The rectangle ``R`` bounding all (bounded) tuples — Section 5's
    reference for object-size fractions."""
    xmin = ymin = math.inf
    xmax = ymax = -math.inf
    for _tid, t in relation:
        poly = t.extension()
        if poly.is_empty or not poly.is_bounded:
            continue
        (lx, ly), (hx, hy) = poly.bounding_box()
        xmin, ymin = min(xmin, lx), min(ymin, ly)
        xmax, ymax = max(xmax, hx), max(ymax, hy)
    return xmin, ymin, xmax, ymax
