"""Quickstart: the paper's Example 2.1, end to end.

Builds a tiny constraint relation, shows the dual representation
(TOP/BOT values and the piecewise-linear TOP profile), runs the worked
half-plane queries of Figure 2 through the indexed planner, and prints
the per-query diagnostics.

Run:  python examples/quickstart.py
"""

from repro import GeneralizedRelation, GeneralizedTuple, parse_tuple
from repro.core import DualIndexPlanner, SlopeSet
from repro.geometry import bot, top, top_profile_2d


def main() -> None:
    # --- the polygon of Figure 2 ------------------------------------
    # A convex pentagon with TOP(0) = 4.5, BOT(-1) > -1 and
    # BOT(1) < 0 < TOP(1) — exactly the facts Example 2.1 uses.
    pentagon = GeneralizedTuple.from_vertices_2d(
        [(1, 2), (3, 1), (5, 3), (4, 4.5), (2, 4)], label="t"
    )
    poly = pentagon.extension()
    print("tuple t:", pentagon)
    print(f"  vertices : {poly.vertices()}")
    print(f"  TOP(-1) = {top(poly, -1.0):.3f}   BOT(-1) = {bot(poly, -1.0):.3f}")
    print(f"  TOP(0)  = {top(poly, 0.0):.3f}   BOT(0)  = {bot(poly, 0.0):.3f}")
    print(f"  TOP(1)  = {top(poly, 1.0):.3f}   BOT(1)  = {bot(poly, 1.0):.3f}")

    profile = top_profile_2d(poly)
    print(f"  TOP graph: {len(profile.pieces)} linear pieces, "
          f"breakpoints at {[round(b, 3) for b in profile.breakpoints]}")

    # --- index it ----------------------------------------------------
    relation = GeneralizedRelation([pentagon], name="example21")
    relation.add(parse_tuple("y >= x - 6 and y <= x - 2 and x <= 12",
                             label="t2"))
    planner = DualIndexPlanner.build(relation, SlopeSet([-1.0, 0.0, 1.0]))

    # --- the worked queries of Example 2.1 ---------------------------
    queries = [
        ("ALL  (y >= -x - 1)", planner.all(-1.0, -1.0, ">=")),
        ("EXIST(y >=  4.5  )", planner.exist(0.0, 4.5, ">=")),
        ("EXIST(y >=  x    )", planner.exist(1.0, 0.0, ">=")),
        ("ALL  (y <=  4.5  )", planner.all(0.0, 4.5, "<=")),
        ("EXIST(y <=  x    )", planner.exist(1.0, 0.0, "<=")),
    ]
    print("\nquery results (tuple ids; 0 = the pentagon):")
    for text, result in queries:
        names = sorted(relation.get(tid).label or str(tid) for tid in result.ids)
        print(
            f"  {text}  ->  {names}   "
            f"[{result.technique}, {result.page_accesses} page accesses, "
            f"{result.false_hits} false hits]"
        )

    # --- a slope outside S: the T2 approximation kicks in ------------
    result = planner.exist(0.4, 2.0, ">=")
    print(
        f"\nEXIST(y >= 0.4x + 2) with 0.4 ∉ S -> technique {result.technique}, "
        f"answer {sorted(result.ids)}, candidates {result.candidates}, "
        f"false hits {result.false_hits}"
    )


if __name__ == "__main__":
    main()
