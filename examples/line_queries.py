"""Line-crossing selections via interval management (footnote 6).

A routing application stores obstacle regions as constraint tuples and
asks which obstacles a *corridor centre-line* ``y = s·x + b`` crosses —
not a half-plane query but a *stabbing* query on the dual intervals
``[BOT(s), TOP(s)]``. The paper's footnote 6 points out that the
restricted problem reduces to 1-D interval management; this example runs
it on the paged interval tree of ``repro.intervals``.

Run:  python examples/line_queries.py
"""

import random

from repro.core import SlopeSet
from repro.intervals import LineQueryIndex
from repro.workloads import make_relation, unbounded_tuple


def main() -> None:
    rng = random.Random(21)
    obstacles = make_relation(400, "small", seed=21, name="obstacles")
    # a couple of unbounded exclusion zones (no-fly half-planes)
    for _ in range(4):
        obstacles.add(unbounded_tuple(rng))

    slopes = SlopeSet([-1.0, -0.25, 0.25, 1.0])  # corridor headings
    index = LineQueryIndex.build(obstacles, slopes, key_bytes=4)
    print(
        f"{index.size} obstacles indexed for line queries at headings "
        f"{list(slopes)}; interval-tree space {index.space_pages()} pages"
    )

    print(f"\n{'heading':>8} {'offset':>7} | {'crossed':>7} "
          f"{'pages':>6} {'false hits':>10}")
    for s in (-0.25, 0.25, 1.0):
        for b in (-30.0, 0.0, 30.0):
            res = index.crossing(s, b)
            print(
                f"{s:>8} {b:>7.1f} | {len(res.ids):>7} "
                f"{res.page_accesses:>6} {res.false_hits:>10}"
            )

    # Consistency: a line-crossing obstacle intersects both half-planes.
    from repro.core import DualIndexPlanner

    planner = DualIndexPlanner.build(obstacles, slopes)
    crossed = index.crossing(0.25, 0.0).ids
    above = planner.exist(0.25, 0.0, ">=").ids
    below = planner.exist(0.25, 0.0, "<=").ids
    assert crossed == above & below
    print("\ninvariant holds: crossed = EXIST(≥) ∩ EXIST(≤)")


if __name__ == "__main__":
    main()
