"""Temporal scenario: resource envelopes over time.

Constraint databases model temporal data as constraints over a time
variable (paper, Section 1). Here each tuple is a *resource envelope*:
the set of (t, load) points a service may occupy — ramp-ups, decays and
steady states, several of them open-ended in time (unbounded tuples).

Queries are half-planes in (t, load) space:

* ``EXIST(load >= L)``          — which envelopes can ever exceed L?
* ``ALL(load <= L)``            — which envelopes are provably capped?
* ``EXIST(load >= r·t + b)``    — which envelopes outgrow a budget line
  that itself grows at rate r?

Run:  python examples/temporal_intervals.py
"""

from repro import GeneralizedRelation, parse_tuple
from repro.core import DualIndexPlanner, SlopeSet


def build_envelopes() -> GeneralizedRelation:
    relation = GeneralizedRelation(name="envelopes")
    specs = [
        # steady services, capped forever (unbounded in time)
        ("steady-a", "t >= 0 and y >= 2 and y <= 4"),
        ("steady-b", "t >= 0 and y >= 8 and y <= 9"),
        # ramp-up: load grows at most 0.5/hour from 1, at least 0.2/hour
        ("ramp", "t >= 0 and y <= 0.5t + 1 and y >= 0.2t + 1"),
        # burst: triangular envelope, fully bounded
        ("burst", "y >= 0 and y <= 2t and y <= -2t + 40"),
        # decaying batch job
        ("decay", "t >= 0 and t <= 30 and y >= 0 and y <= -0.3t + 10"),
        # runaway: no upper bound at all
        ("runaway", "t >= 5 and y >= t - 5"),
    ]
    for name, text in specs:
        relation.add(parse_tuple(text, dimension=2, label=name))
    return relation


def names(relation, ids):
    return sorted(relation.get(tid).label for tid in ids)


def main() -> None:
    envelopes = build_envelopes()
    planner = DualIndexPlanner.build(
        envelopes, SlopeSet([-0.5, 0.0, 0.5]), key_bytes=8
    )
    print(f"{len(envelopes)} resource envelopes indexed\n")

    print("can the load ever exceed L?   EXIST(load >= L)")
    for level in (3.0, 9.5, 25.0):
        res = planner.exist(0.0, level, ">=")
        print(f"  L = {level:>4}: {names(envelopes, res.ids)}")

    print("\nprovably capped at L?         ALL(load <= L)")
    for level in (4.0, 10.0, 50.0):
        res = planner.all(0.0, level, "<=")
        print(f"  L = {level:>4}: {names(envelopes, res.ids)}")

    print("\noutgrows a budget line load = 0.4·t + 2?   EXIST(load >= 0.4t + 2)")
    res = planner.exist(0.4, 2.0, ">=")
    print(f"  {names(envelopes, res.ids)}   "
          f"[{res.technique}: slope 0.4 ∉ S, handicap search used]")

    print("\nstays under the budget line forever?       ALL(load <= 0.4t + 2)")
    res = planner.all(0.4, 2.0, "<=")
    print(f"  {names(envelopes, res.ids)}")


if __name__ == "__main__":
    main()
