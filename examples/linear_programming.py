"""Operations-research scenario: screening LP feasible regions.

The paper motivates infinite (unbounded) objects with Operations Research
applications: a constraint database stores the *feasible regions* of many
planning problems — most of them unbounded polyhedra that no R-tree can
index. An analyst screens them against objective-value half-planes:

* ``EXIST(profit >= c)`` — which plans can achieve profit at least c?
  (the profit functional defines a half-plane in decision space)
* ``ALL(y <= cap)``      — which plans are certain to respect a cap,
  whatever feasible point is chosen?

Run:  python examples/linear_programming.py
"""

import random

from repro import GeneralizedRelation, parse_tuple
from repro.core import DualIndexPlanner, SlopeSet
from repro.geometry import bot, top


def build_portfolio(seed: int = 3) -> GeneralizedRelation:
    """Feasible regions over decision variables (x = units of product A,
    y = units of product B). Deliberately a mix of bounded and unbounded
    plans (some have no demand ceiling)."""
    rng = random.Random(seed)
    relation = GeneralizedRelation(name="plans")
    templates = [
        # classic bounded production plan
        "x >= 0 and y >= 0 and y <= -0.8x + {cap} and y <= {ylim}",
        # no ceiling on product B: unbounded upward
        "x >= 0 and y >= 0 and y >= 0.5x - {slack}",
        # contractual floor: everything above a line
        "y >= 1.2x - {floor}",
        # tolerance band around a target mix
        "y >= 0.9x - {band} and y <= 0.9x + {band}",
    ]
    for i in range(40):
        template = templates[i % len(templates)]
        text = template.format(
            cap=rng.uniform(20, 60),
            ylim=rng.uniform(10, 40),
            slack=rng.uniform(5, 25),
            floor=rng.uniform(0, 10),
            band=rng.uniform(1, 8),
        )
        relation.add(parse_tuple(text, label=f"plan-{i}"))
    return relation


def main() -> None:
    plans = build_portfolio()
    unbounded = sum(
        1 for _, t in plans if not t.extension().is_bounded
    )
    print(f"{len(plans)} feasible regions, {unbounded} of them unbounded "
          f"(un-indexable by R-trees)")

    planner = DualIndexPlanner.build(plans, SlopeSet([-1.0, 0.0, 1.0]))

    # Profit functional: 2A + 1B >= c  <=>  y >= -2x + c.
    print("\nprofit screening  EXIST(y >= -2x + c):")
    for c in (10.0, 40.0, 120.0):
        res = planner.exist(-2.0, c, ">=")
        print(f"  profit >= {c:>5.0f}: {len(res.ids):>2} plans reachable "
              f"[{res.technique}, {res.page_accesses} pages]")

    # Capacity certainty: every feasible point satisfies y <= cap.
    print("\ncapacity certainty  ALL(y <= cap):")
    for cap in (15.0, 45.0, 200.0):
        res = planner.all(0.0, cap, "<=")
        print(f"  y <= {cap:>5.0f} guaranteed by {len(res.ids):>2} plans "
              f"[{res.technique}]")

    # Inspect one unbounded plan's dual representation.
    tid, plan = next(
        (tid, t) for tid, t in plans if not t.extension().is_bounded
    )
    poly = plan.extension()
    print(f"\ndual view of unbounded {plan.label}:")
    for s in (-1.0, 0.0, 1.0):
        print(f"  slope {s:>4}: TOP = {top(poly, s)}, BOT = {bot(poly, s)}")
    print("(±inf values are stored directly as index keys — the dual "
          "index needs no clipping window)")


if __name__ == "__main__":
    main()
