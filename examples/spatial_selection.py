"""Spatial-database scenario: zoning parcels against a flood line.

A city stores land parcels as constraint tuples (convex polygons). A
planning query asks, for a rising water line ``y = a·x + b`` (the terrain
tilts, so the line has a slope):

* EXIST — which parcels does the water line reach at all?
* ALL   — which parcels are entirely below the line (fully flooded)?

This is exactly the half-plane ALL/EXIST workload of the paper; the
example compares the dual-representation index against the R+-tree on
page accesses, for several water levels.

Run:  python examples/spatial_selection.py
"""


from repro import GeneralizedRelation
from repro.core import DualIndexPlanner, SlopeSet
from repro.rtree.planner import RTreePlanner
from repro.storage import Pager
from repro.workloads import make_relation


def build_city(num_parcels: int = 800, seed: int = 7) -> GeneralizedRelation:
    """Parcels: small convex polygons over the working window."""
    relation = make_relation(num_parcels, "small", seed=seed, name="parcels")
    return relation


def main() -> None:
    parcels = build_city()
    slopes = SlopeSet.uniform_angles(4)
    dual = DualIndexPlanner.build(parcels, slopes, pager=Pager(), key_bytes=4)
    rplus = RTreePlanner.build(parcels, pager=Pager(), key_bytes=4)

    flood_slope = 0.12  # terrain tilt — not in the predefined slope set
    print(f"{len(parcels)} parcels indexed; water line slope {flood_slope}")
    print(f"{'level':>7} | {'reached':>8} {'flooded':>8} | "
          f"{'dual idx pages':>15} {'R+ idx pages':>13}")
    for level in (-35.0, -15.0, 0.0, 15.0, 35.0):
        # water covers y <= slope*x + level
        reached = dual.exist(flood_slope, level, "<=")
        flooded = dual.all(flood_slope, level, "<=")
        reached_r = rplus.exist(flood_slope, level, "<=")
        flooded_r = rplus.all(flood_slope, level, "<=")
        assert reached.ids == reached_r.ids
        assert flooded.ids == flooded_r.ids
        dual_pages = reached.index_accesses + flooded.index_accesses
        rplus_pages = reached_r.index_accesses + flooded_r.index_accesses
        print(
            f"{level:>7.1f} | {len(reached.ids):>8} {len(flooded.ids):>8} | "
            f"{dual_pages:>15} {rplus_pages:>13}"
        )

    # Consistency: a fully flooded parcel is always reached.
    sample = dual.all(flood_slope, 0.0, "<=")
    touch = dual.exist(flood_slope, 0.0, "<=")
    assert sample.ids <= touch.ids
    print("\ninvariant holds: flooded ⊆ reached")


if __name__ == "__main__":
    main()
