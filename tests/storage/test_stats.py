"""IOStats and StatsScope tests."""

from repro.storage import IOStats, Pager, StatsScope


def test_snapshot_is_independent():
    stats = IOStats(logical_reads=3)
    snap = stats.snapshot()
    stats.logical_reads = 10
    assert snap.logical_reads == 3


def test_delta_since():
    before = IOStats(logical_reads=2, logical_writes=1)
    after = IOStats(logical_reads=7, logical_writes=4, physical_reads=3)
    delta = after.delta_since(before)
    assert delta.logical_reads == 5
    assert delta.logical_writes == 3
    assert delta.physical_reads == 3
    assert delta.page_accesses == 8


def test_reset():
    stats = IOStats(logical_reads=5, allocations=2)
    stats.reset()
    assert stats.logical_reads == 0
    assert stats.allocations == 0


def test_scope_nested_measurements():
    pager = Pager()
    pid = pager.allocate()
    pager.write(pid, bytes(1024))
    with StatsScope(pager.stats) as outer:
        pager.read(pid)
        with StatsScope(pager.stats) as inner:
            pager.read(pid)
            pager.read(pid)
        pager.read(pid)
    assert inner.delta.logical_reads == 2
    assert outer.delta.logical_reads == 4


def test_errors_hierarchy():
    from repro import ReproError
    from repro.errors import (
        ConstraintError,
        EmptyExtensionError,
        GeometryError,
        IndexError_,
        PageOverflowError,
        ParseError,
        QueryError,
        SlopeSetError,
        StorageError,
    )

    assert issubclass(ParseError, ConstraintError)
    assert issubclass(EmptyExtensionError, GeometryError)
    assert issubclass(PageOverflowError, StorageError)
    assert issubclass(SlopeSetError, IndexError_)
    assert issubclass(QueryError, IndexError_)
    for exc in (
        ConstraintError,
        GeometryError,
        StorageError,
        IndexError_,
    ):
        assert issubclass(exc, ReproError)
