"""BufferPool and Pager tests: caching, write-back, accounting."""

import pytest

from repro.errors import StorageError
from repro.storage import BufferPool, DiskSimulator, Pager


class TestBufferPool:
    def test_zero_capacity_passthrough(self):
        disk = DiskSimulator()
        pool = BufferPool(disk, 0)
        pid = disk.allocate()
        pool.write(pid, bytes(1024))
        pool.read(pid)
        assert disk.stats.physical_reads == 1
        assert disk.stats.physical_writes == 1

    def test_read_hit_avoids_disk(self):
        disk = DiskSimulator()
        pool = BufferPool(disk, 4)
        pid = disk.allocate()
        pool.read(pid)
        pool.read(pid)
        pool.read(pid)
        assert disk.stats.physical_reads == 1
        assert pool.hits == 2
        assert pool.hit_rate == pytest.approx(2 / 3)

    def test_dirty_eviction_writes_back(self):
        disk = DiskSimulator()
        pool = BufferPool(disk, 1)
        a, b = disk.allocate(), disk.allocate()
        image = b"\xab" * 1024
        pool.write(a, image)
        assert disk.stats.physical_writes == 0  # staged only
        pool.read(b)  # evicts a
        assert disk.stats.physical_writes == 1
        assert disk.read_page(a) == image

    def test_flush(self):
        disk = DiskSimulator()
        pool = BufferPool(disk, 4)
        pid = disk.allocate()
        pool.write(pid, b"\x01" * 1024)
        pool.flush()
        assert disk.read_page(pid) == b"\x01" * 1024
        # flush keeps the frame cached
        pool.read(pid)
        assert pool.hits == 1

    def test_discard_drops_without_writeback(self):
        disk = DiskSimulator()
        pool = BufferPool(disk, 4)
        pid = disk.allocate()
        pool.write(pid, b"\x02" * 1024)
        pool.discard(pid)
        pool.flush()
        assert disk.read_page(pid) == bytes(1024)

    def test_negative_capacity_rejected(self):
        with pytest.raises(StorageError):
            BufferPool(DiskSimulator(), -1)


class TestZeroCapacityConsistency:
    """A zero-capacity pool must account and fail exactly like a cached
    one — capacity only changes *physical* traffic, never semantics."""

    def _run(self, capacity: int, ops):
        pager = Pager(buffer_frames=capacity)
        pids = [pager.allocate() for _ in range(3)]
        for pid in pids:
            pager.write(pid, bytes(1024))
        pager.cool_down()
        pager.stats.reset()
        pager.buffer.hits = pager.buffer.misses = 0
        ops(pager, pids)
        return pager

    def test_logical_counters_match_cached_mode(self):
        def ops(pager, pids):
            for pid in pids:
                pager.write(pid, b"\x05" * 1024)
            for pid in pids + pids:
                pager.read(pid)

        cold = self._run(0, ops)
        warm = self._run(8, ops)
        assert cold.stats.logical_reads == warm.stats.logical_reads
        assert cold.stats.logical_writes == warm.stats.logical_writes

    def test_zero_capacity_reads_all_miss(self):
        def ops(pager, pids):
            for pid in pids + pids:
                pager.read(pid)

        pager = self._run(0, ops)
        assert pager.buffer.hits == 0
        assert pager.buffer.misses == pager.stats.logical_reads == 6

    def test_hits_plus_misses_equals_logical_reads(self):
        for capacity in (0, 2, 8):
            def ops(pager, pids):
                for pid in pids + pids + pids:
                    pager.read(pid)

            pager = self._run(capacity, ops)
            assert (
                pager.buffer.hits + pager.buffer.misses
                == pager.stats.logical_reads
            ), f"capacity={capacity}"

    def test_write_to_unallocated_fails_in_both_modes(self):
        for capacity in (0, 4):
            disk = DiskSimulator()
            pool = BufferPool(disk, capacity)
            with pytest.raises(StorageError):
                pool.write(999, bytes(1024))

    def test_wrong_size_write_fails_in_both_modes(self):
        for capacity in (0, 4):
            disk = DiskSimulator()
            pool = BufferPool(disk, capacity)
            pid = disk.allocate()
            with pytest.raises(StorageError):
                pool.write(pid, b"short")

    def test_staged_write_survives_flush(self):
        disk = DiskSimulator()
        pool = BufferPool(disk, 4)
        pid = disk.allocate()
        pool.write(pid, b"\x0c" * 1024)
        pool.flush()
        assert disk.read_page(pid) == b"\x0c" * 1024


class TestPager:
    def test_logical_vs_physical(self):
        pager = Pager(buffer_frames=8)
        pid = pager.allocate()
        pager.write(pid, bytes(1024))
        for _ in range(5):
            pager.read(pid)
        assert pager.stats.logical_reads == 5
        assert pager.stats.physical_reads == 0  # cached after the write

    def test_cold_stack_counts_match(self):
        pager = Pager()  # no buffer
        pid = pager.allocate()
        pager.write(pid, bytes(1024))
        pager.read(pid)
        assert pager.stats.logical_reads == pager.stats.physical_reads == 1
        assert pager.stats.logical_writes == pager.stats.physical_writes == 1

    def test_measure_scope(self):
        pager = Pager()
        pid = pager.allocate()
        pager.write(pid, bytes(1024))
        with pager.measure() as scope:
            pager.read(pid)
            pager.read(pid)
        assert scope.delta.logical_reads == 2
        assert scope.delta.logical_writes == 0

    def test_cool_down(self):
        pager = Pager(buffer_frames=4)
        pid = pager.allocate()
        pager.write(pid, b"\x07" * 1024)
        pager.cool_down()
        assert pager.disk.read_page(pid) == b"\x07" * 1024
        before = pager.disk.stats.physical_reads
        pager.read(pid)
        assert pager.disk.stats.physical_reads == before + 1  # cache emptied

    def test_free_discards_frame(self):
        pager = Pager(buffer_frames=4)
        pid = pager.allocate()
        pager.write(pid, b"\x09" * 1024)
        pager.free(pid)
        assert pager.allocated_pages == 0

    def test_stats_reset(self):
        pager = Pager()
        pid = pager.allocate()
        pager.read(pid)
        pager.stats.reset()
        assert pager.stats.logical_reads == 0
        assert pager.stats.page_accesses == 0
