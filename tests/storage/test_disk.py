"""DiskSimulator tests."""

import pytest

from repro.errors import StorageError
from repro.storage import DiskSimulator


def test_allocate_returns_zeroed_pages():
    disk = DiskSimulator(page_size=128)
    pid = disk.allocate()
    assert disk.read_page(pid) == bytes(128)


def test_write_read_roundtrip():
    disk = DiskSimulator(page_size=128)
    pid = disk.allocate()
    image = bytes(range(128))
    disk.write_page(pid, image)
    assert disk.read_page(pid) == image


def test_wrong_size_write_rejected():
    disk = DiskSimulator(page_size=128)
    pid = disk.allocate()
    with pytest.raises(StorageError):
        disk.write_page(pid, b"short")


def test_unallocated_access_rejected():
    disk = DiskSimulator()
    with pytest.raises(StorageError):
        disk.read_page(7)
    with pytest.raises(StorageError):
        disk.write_page(7, bytes(1024))
    with pytest.raises(StorageError):
        disk.free(7)


def test_free_recycles_ids():
    disk = DiskSimulator()
    a = disk.allocate()
    disk.free(a)
    b = disk.allocate()
    assert b == a
    assert disk.allocated_pages == 1


def test_double_free_rejected():
    disk = DiskSimulator()
    pid = disk.allocate()
    disk.free(pid)
    with pytest.raises(StorageError):
        disk.free(pid)


def test_physical_counters():
    disk = DiskSimulator()
    pid = disk.allocate()
    disk.write_page(pid, bytes(1024))
    disk.read_page(pid)
    disk.read_page(pid)
    assert disk.stats.physical_writes == 1
    assert disk.stats.physical_reads == 2
    assert disk.stats.allocations == 1


def test_space_accounting():
    disk = DiskSimulator(page_size=512)
    pids = [disk.allocate() for _ in range(5)]
    assert disk.allocated_bytes == 5 * 512
    disk.free(pids[0])
    assert disk.allocated_bytes == 4 * 512


def test_tiny_page_size_rejected():
    with pytest.raises(StorageError):
        DiskSimulator(page_size=16)
