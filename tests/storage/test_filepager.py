"""FileDisk tests: DiskSimulator parity, persistence, crash recovery."""

import os
import random

import pytest

from repro.errors import RecoveryError, StorageError
from repro.storage import DiskSimulator, FileDisk, Pager
from repro.storage.filepager import FREE_FILES, PAGE_FILE, _release


def _random_ops(disk, sim, rng, n_ops):
    """Drive both disks through the same random op stream."""
    live = []
    for _ in range(n_ops):
        op = rng.random()
        if op < 0.45 or not live:
            a, b = disk.allocate(), sim.allocate()
            assert a == b
            live.append(a)
        elif op < 0.65:
            pid = live.pop(rng.randrange(len(live)))
            disk.free(pid)
            sim.free(pid)
        elif op < 0.85:
            pid = rng.choice(live)
            image = bytes([rng.randrange(256)]) * disk.page_size
            disk.write_page(pid, image)
            sim.write_page(pid, image)
        else:
            pid = rng.choice(live)
            assert disk.read_page(pid) == sim.read_page(pid)
    return live


@pytest.mark.parametrize("durability", ["none", "wal"])
def test_parity_with_simulator(tmp_path, durability):
    """Same op stream → identical page ids, images, and stats."""
    disk = FileDisk(str(tmp_path / "d"), page_size=256, durability=durability)
    sim = DiskSimulator(page_size=256)
    rng = random.Random(11)
    live = _random_ops(disk, sim, rng, 300)
    for pid in live:
        assert disk.read_page(pid) == sim.read_page(pid)
    # read comparisons above count on both sides, so stats stay equal
    assert disk.stats.__dict__ == sim.stats.__dict__
    disk.close()


@pytest.mark.parametrize("durability", ["none", "wal"])
def test_reopen_preserves_pages_and_allocation_order(tmp_path, durability):
    """A reopened disk serves the same images and allocates the same
    future page ids (LIFO free list survives the restart)."""
    path = str(tmp_path / "d")
    disk = FileDisk(path, page_size=128, durability=durability)
    pids = [disk.allocate() for _ in range(6)]
    for n, pid in enumerate(pids):
        disk.write_page(pid, bytes([n + 1]) * 128)
    for pid in (pids[4], pids[1], pids[3]):
        disk.free(pid)
    if durability == "wal":
        disk.commit()
    disk.close()

    sim = DiskSimulator(page_size=128)
    for _ in range(6):
        sim.allocate()
    for pid in (pids[4], pids[1], pids[3]):
        sim.free(pid)

    reopened = FileDisk(path, page_size=128, durability=durability)
    for n, pid in enumerate(pids):
        if pid in (pids[4], pids[1], pids[3]):
            continue
        assert reopened.read_page(pid) == bytes([n + 1]) * 128
    # allocation order after restart matches the in-memory simulator
    assert [reopened.allocate() for _ in range(4)] == \
        [sim.allocate() for _ in range(4)]
    reopened.close()


def test_freelist_files_ping_pong(tmp_path):
    """Each durability point flips the free-list slot by generation."""
    path = str(tmp_path / "d")
    disk = FileDisk(path, page_size=128, durability="none")
    disk.allocate()
    disk.commit()
    gen0 = disk._generation
    disk.commit()
    assert disk._generation == gen0 + 1
    disk.close()
    names = sorted(os.listdir(path))
    assert PAGE_FILE in names
    assert all(f in names for f in FREE_FILES)


def test_wal_mode_defers_data_file_until_checkpoint(tmp_path):
    """WAL mode never writes the data file before a checkpoint folds
    the overlay in; a crash before commit rolls back cleanly."""
    path = str(tmp_path / "d")
    disk = FileDisk(path, page_size=128, durability="wal")
    pid = disk.allocate()
    disk.write_page(pid, b"\x7f" * 128)
    size_before = os.stat(os.path.join(path, PAGE_FILE)).st_size
    disk.commit()
    assert os.stat(os.path.join(path, PAGE_FILE)).st_size == size_before
    disk.checkpoint()
    assert os.stat(os.path.join(path, PAGE_FILE)).st_size > size_before
    assert disk.read_page(pid) == b"\x7f" * 128
    disk.close()


def test_uncommitted_wal_writes_roll_back(tmp_path):
    path = str(tmp_path / "d")
    disk = FileDisk(path, page_size=128, durability="wal")
    pid = disk.allocate()
    disk.write_page(pid, b"\x01" * 128)
    disk.commit()
    disk.write_page(pid, b"\x02" * 128)  # never committed
    _release(disk._h, disk.wal)  # simulate a crash: no close(), no commit

    reopened = FileDisk(path, page_size=128, durability="wal")
    assert reopened.read_page(pid) == b"\x01" * 128
    reopened.close()


def test_page_size_mismatch_rejected(tmp_path):
    path = str(tmp_path / "d")
    FileDisk(path, page_size=128, durability="none").close()
    with pytest.raises(StorageError, match="page.size"):
        FileDisk(path, page_size=256, durability="none")


def test_corrupt_both_headers_raises_recovery_error(tmp_path):
    path = str(tmp_path / "d")
    disk = FileDisk(path, page_size=128, durability="none")
    disk.allocate()
    disk.close()
    with open(os.path.join(path, PAGE_FILE), "r+b") as fh:
        fh.write(b"\xff" * 128)  # both 64-byte header slots
    with pytest.raises(RecoveryError):
        FileDisk(path, page_size=128, durability="none")


def test_ephemeral_cleanup(tmp_path):
    disk = FileDisk.ephemeral(str(tmp_path), page_size=128)
    path = disk.data_dir
    pid = disk.allocate()
    disk.write_page(pid, b"\x05" * 128)
    assert disk.read_page(pid) == b"\x05" * 128
    disk.close()
    disk._finalizer()  # what garbage collection runs
    assert not os.path.exists(path)


def test_repro_data_dir_gates_default_disk(tmp_path, monkeypatch):
    from repro.storage.pager import _default_disk

    monkeypatch.delenv("REPRO_DATA_DIR", raising=False)
    assert isinstance(_default_disk(1024), DiskSimulator)
    monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
    disk = _default_disk(1024)
    assert isinstance(disk, FileDisk)
    disk.close()


def test_pager_over_filedisk_counts_like_simulator(tmp_path):
    """Pager logical/physical accounting is disk-implementation blind."""
    fd = FileDisk(str(tmp_path / "d"), page_size=256, durability="wal")
    file_pager = Pager(page_size=256, buffer_frames=4, disk=fd)
    sim_pager = Pager(page_size=256, buffer_frames=4)
    for pager in (file_pager, sim_pager):
        pids = [pager.allocate() for _ in range(8)]
        for n, pid in enumerate(pids):
            pager.write(pid, bytes([n]) * 256)
        for pid in pids:
            pager.read(pid)
        pager.flush()
    assert file_pager.stats.__dict__ == sim_pager.stats.__dict__
    fd.close()
