"""Typed errors on torn/short serialized buffers (crash debris)."""

import pytest

from repro.constraints.linear import LinearConstraint
from repro.constraints.tuples import GeneralizedTuple
from repro.errors import StorageError, TruncatedRecordError
from repro.storage.serialize import (
    KeyCodec,
    decode_tuple,
    encode_tuple,
    tuple_record_size,
)


def _tuple():
    return GeneralizedTuple([
        LinearConstraint((1.0, 0.0), 2.0, "<="),
        LinearConstraint((0.0, 1.0), 3.0, "<="),
        LinearConstraint((-1.0, -1.0), 0.0, "<="),
    ])


@pytest.mark.parametrize("key_bytes", [4, 8])
def test_key_decode_rejects_wrong_width(key_bytes):
    codec = KeyCodec(key_bytes)
    good = codec.encode(1.5)
    assert codec.decode(good) == 1.5
    with pytest.raises(TruncatedRecordError, match="key buffer"):
        codec.decode(good[:-1])
    with pytest.raises(TruncatedRecordError):
        codec.decode(good + b"\x00")


def test_decode_keys_rejects_short_buffer():
    codec = KeyCodec(4)
    data = codec.encode_keys([1.0, 2.0, 3.0])
    assert codec.decode_keys(data, 3) == [1.0, 2.0, 3.0]
    with pytest.raises(TruncatedRecordError, match="cannot hold"):
        codec.decode_keys(data, 4)
    with pytest.raises(TruncatedRecordError):
        codec.decode_keys(data[:-1], 3)
    with pytest.raises(TruncatedRecordError, match="cannot hold"):
        codec.decode_keys(data, 3, offset=4)


def test_decode_keys_rejects_negative_range():
    codec = KeyCodec(8)
    with pytest.raises(TruncatedRecordError, match="invalid key range"):
        codec.decode_keys(b"", -1)
    with pytest.raises(TruncatedRecordError, match="invalid key range"):
        codec.decode_keys(b"", 0, offset=-8)


def test_tuple_roundtrip_and_torn_buffers():
    record = encode_tuple(42, _tuple())
    assert len(record) == tuple_record_size(2, 3)
    tid, decoded = decode_tuple(record)
    assert tid == 42
    assert len(decoded.constraints) == 3

    # shorter than the 6-byte header
    with pytest.raises(TruncatedRecordError, match="shorter than its header"):
        decode_tuple(record[:5])
    # header intact but body torn — every prefix length must raise
    for cut in range(6, len(record)):
        with pytest.raises(TruncatedRecordError, match="header promises"):
            decode_tuple(record[:cut])


def test_unknown_theta_is_bit_rot_not_tearing():
    record = bytearray(encode_tuple(7, _tuple()))
    record[-1] = 0xEE  # last byte is the final atom's theta code
    with pytest.raises(StorageError, match="unknown theta") as exc:
        decode_tuple(bytes(record))
    assert not isinstance(exc.value, TruncatedRecordError)
