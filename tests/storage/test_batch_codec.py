"""Batched key (de)serialization agrees with the scalar codec."""

from __future__ import annotations

import math
import struct

import numpy as np
import pytest

from repro.storage.serialize import KeyCodec

EDGE_VALUES = [
    0.0,
    -0.0,
    1.5,
    -7.25,
    1e-40,
    3.5e38,       # saturates to +inf at 4 bytes
    -3.5e38,      # saturates to -inf at 4 bytes
    3.4e38,
    1e308,
    -1e308,
    math.inf,
    -math.inf,
    math.pi,
]


@pytest.mark.parametrize("key_bytes", [4, 8])
def test_encode_keys_matches_scalar_encode(key_bytes):
    codec = KeyCodec(key_bytes)
    batched = codec.encode_keys(EDGE_VALUES)
    scalar = b"".join(codec.encode(v) for v in EDGE_VALUES)
    assert batched == scalar


@pytest.mark.parametrize("key_bytes", [4, 8])
def test_decode_keys_matches_scalar_decode(key_bytes):
    codec = KeyCodec(key_bytes)
    data = codec.encode_keys(EDGE_VALUES)
    batched = codec.decode_keys(data, len(EDGE_VALUES))
    fmt = "<f" if key_bytes == 4 else "<d"
    scalar = [
        struct.unpack_from(fmt, data, i * key_bytes)[0]
        for i in range(len(EDGE_VALUES))
    ]
    assert batched == scalar


@pytest.mark.parametrize("key_bytes", [4, 8])
def test_roundtrip_with_offset(key_bytes):
    codec = KeyCodec(key_bytes)
    prefix = b"\xaa" * key_bytes
    data = prefix + codec.encode_keys([1.0, 2.0, 3.0])
    assert codec.decode_keys(data, 2, offset=key_bytes * 2) == [2.0, 3.0]
    assert codec.encode_keys([]) == b""
    assert codec.decode_keys(b"", 0) == []


@pytest.mark.parametrize("key_bytes", [4, 8])
def test_quantize_many_matches_scalar_quantize(key_bytes):
    codec = KeyCodec(key_bytes)
    batched = codec.quantize_many(EDGE_VALUES)
    scalar = [codec.quantize(v) for v in EDGE_VALUES]
    assert list(batched) == scalar


def test_saturate_array_clamps_only_4_byte():
    values = [3.5e38, -3.5e38, 1.0, math.inf]
    four = KeyCodec(4).saturate_array(values)
    assert list(four) == [math.inf, -math.inf, 1.0, math.inf]
    eight = KeyCodec(8).saturate_array(values)
    assert list(eight) == values
    assert eight.dtype == np.float64
