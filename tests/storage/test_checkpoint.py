"""Checkpoint catalog tests: save/commit/open, ping-pong slots, crashes."""

import os

import pytest

from repro.workloads.generator import make_relation
from repro.core.planner import DualIndexPlanner
from repro.errors import FaultInjectedError, RecoveryError, StorageError
from repro.core.slope_set import SlopeSet
from repro.shard.sharded import ShardedDualIndex
from repro.storage import (
    FileDisk,
    Pager,
    commit_planner,
    open_engine,
    open_planner,
    open_sharded,
    read_catalog,
    save_engine,
    save_planner,
    save_sharded,
    write_catalog,
)
from repro.storage.checkpoint import CATALOG_FILES

SLOPES = SlopeSet.uniform_angles(4)


def _build(n=40, pager=None, dynamic=False):
    return DualIndexPlanner.build(
        make_relation(n, "small", seed=5), SLOPES, pager=pager, dynamic=dynamic)


def _queries(planner):
    from repro.bench import harness
    return harness.queries_for(16, "small", "EXIST", 4, count=12)


def _answers(planner, queries):
    return [sorted(planner.query(q).ids) for q in queries]


def test_catalog_ping_pong_and_fallback(tmp_path):
    path = str(tmp_path)
    write_catalog(path, {"kind": "x", "n": 1}, 3)
    write_catalog(path, {"kind": "x", "n": 2}, 5)
    payload, seq, generation = read_catalog(path)
    assert (payload["n"], seq, generation) == (2, 5, 2)
    # corrupt the newer slot: recovery falls back to the older one
    with open(os.path.join(path, CATALOG_FILES[generation % 2]), "r+b") as fh:
        fh.seek(40)
        fh.write(b"\xff\xff")
    payload, seq, generation = read_catalog(path)
    assert (payload["n"], seq, generation) == (1, 3, 1)


def test_read_catalog_without_any_slot_raises(tmp_path):
    with pytest.raises(RecoveryError, match="no valid catalog"):
        read_catalog(str(tmp_path))


def test_save_and_open_snapshot(tmp_path):
    """An in-memory planner snapshots to disk and reopens identically."""
    planner = _build()
    queries = _queries(planner)
    expected = _answers(planner, queries)
    path = str(tmp_path / "engine")
    save_planner(planner, path)

    reopened = open_planner(path)
    assert reopened.index.size == planner.index.size
    assert _answers(reopened, queries) == expected
    # allocator cloned: both sides hand out the same next page id
    assert reopened.index.pager.disk.allocate() == \
        planner.index.pager.disk.allocate()
    reopened.index.pager.disk.close()


def test_save_into_occupied_dir_rejected(tmp_path):
    path = str(tmp_path / "engine")
    save_planner(_build(), path)
    with pytest.raises(StorageError, match="already holds a page file"):
        save_planner(_build(), path)


def test_live_save_commit_and_reopen(tmp_path):
    path = str(tmp_path / "engine")
    disk = FileDisk(path, durability="wal")
    planner = _build(pager=Pager(disk=disk), dynamic=True)
    queries = _queries(planner)
    save_planner(planner, path)  # in-place: commit + checkpoint

    from repro.verify.workload import bounded_tuple
    import random
    rng = random.Random(3)
    tid = planner.index.size + 100
    planner.insert(tid, bounded_tuple(rng))
    commit_planner(planner, path)  # WAL-only durability point
    expected = _answers(planner, queries)
    disk.close()

    reopened = open_planner(path)
    assert _answers(reopened, queries) == expected
    reopened.index.pager.disk.close()


def test_commit_requires_live_wal_disk(tmp_path):
    with pytest.raises(StorageError, match="durability='wal'"):
        commit_planner(_build(), str(tmp_path))


def test_crash_between_commit_and_catalog_rolls_back(tmp_path):
    """The catalog write is the commit point: a WAL commit without a
    catalog update is invisible after reopen."""
    path = str(tmp_path / "engine")
    disk = FileDisk(path, durability="wal")
    planner = _build(pager=Pager(disk=disk), dynamic=True)
    queries = _queries(planner)
    save_planner(planner, path)
    expected = _answers(planner, queries)

    from repro.verify.workload import bounded_tuple
    import random
    planner.insert(10_000, bounded_tuple(random.Random(4)))
    planner.index.pager.flush()
    disk.commit()  # durable in the WAL — but no catalog names it
    disk.close()

    reopened = open_planner(path)
    assert _answers(reopened, queries) == expected  # insert rolled back
    reopened.index.pager.disk.close()


def test_crash_mid_checkpoint_recovers(tmp_path):
    """A checkpoint that dies mid-fold reopens to the saved state (the
    catalog was written first, so the WAL replays the folded batch)."""
    path = str(tmp_path / "engine")
    disk = FileDisk(path, durability="wal")
    planner = _build(pager=Pager(disk=disk), dynamic=True)
    queries = _queries(planner)
    expected = _answers(planner, queries)

    disk.fail_checkpoint_after = 2  # die after two page folds
    with pytest.raises(FaultInjectedError):
        save_planner(planner, path)
    disk.close()

    reopened = open_planner(path)
    assert _answers(reopened, queries) == expected
    reopened.index.pager.disk.close()


def test_sharded_save_open_and_engine_dispatch(tmp_path):
    engine = ShardedDualIndex.build(make_relation(60, "small", seed=9), SLOPES,
                                    shards=3)
    queries = _queries(engine)
    expected = [sorted(engine.query(q).ids) for q in queries]
    path = str(tmp_path / "fleet")
    save_engine(engine, path)
    assert read_catalog(path)[0]["kind"] == "sharded"
    assert "catalog.1" in os.listdir(path)  # first write is generation 1

    reopened = open_sharded(path)
    assert len(reopened.planners) == 3
    assert [sorted(reopened.query(q).ids) for q in queries] == expected
    for p in reopened.planners:
        p.index.pager.disk.close()

    again = open_engine(path)  # kind-dispatching front door
    assert hasattr(again, "planners")
    for p in again.planners:
        p.index.pager.disk.close()


def test_open_planner_rejects_wrong_kind(tmp_path):
    engine = ShardedDualIndex.build(make_relation(20, "small", seed=9), SLOPES,
                                    shards=2)
    path = str(tmp_path / "fleet")
    save_sharded(engine, path)
    with pytest.raises(StorageError, match="expected 'planner'"):
        open_planner(path)
