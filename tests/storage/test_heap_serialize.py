"""Heap file and record codec tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints import parse_tuple
from repro.errors import PageOverflowError, StorageError
from repro.storage import (
    HeapFile,
    KeyCodec,
    Pager,
    decode_tuple,
    encode_tuple,
    pack_rid,
    tuple_record_size,
    unpack_rid,
)
from tests.conftest import random_bounded_tuple


class TestKeyCodec:
    def test_f64_lossless(self):
        codec = KeyCodec(8)
        for v in (0.0, -1.5, 3.141592653589793, 1e300, float("inf")):
            assert codec.decode(codec.encode(v)) == v

    def test_f32_quantizes(self):
        codec = KeyCodec(4)
        v = 1.000000123456789
        q = codec.quantize(v)
        assert q != v
        assert abs(q - v) < 1e-6

    def test_down_up_bracket_value(self):
        codec = KeyCodec(4)
        rng = random.Random(1)
        for _ in range(300):
            v = rng.uniform(-1e6, 1e6)
            assert codec.down(v) <= v <= codec.up(v)
            # down/up are representable values
            assert codec.quantize(codec.down(v)) == codec.down(v)
            assert codec.quantize(codec.up(v)) == codec.up(v)

    def test_infinities_pass_through(self):
        codec = KeyCodec(4)
        assert codec.quantize(float("inf")) == float("inf")
        assert codec.down(float("-inf")) == float("-inf")

    def test_f32_saturates_large(self):
        codec = KeyCodec(4)
        assert codec.quantize(1e39) == float("inf")
        assert codec.quantize(-1e39) == float("-inf")

    def test_bad_width_rejected(self):
        with pytest.raises(StorageError):
            KeyCodec(3)


class TestRID:
    def test_roundtrip(self):
        rid = pack_rid(1234, 56)
        assert unpack_rid(rid) == (1234, 56)

    def test_slot_limit(self):
        with pytest.raises(StorageError):
            pack_rid(1, 300)


class TestTupleRecords:
    def test_roundtrip_exact(self):
        t = parse_tuple("y >= 0.123456789x - 7.75 and x <= 50.5")
        tid, back = decode_tuple(encode_tuple(42, t))
        assert tid == 42
        assert back == t  # float64 coefficients: lossless

    def test_record_size_formula(self):
        t = parse_tuple("x <= 2 and y >= 3")
        data = encode_tuple(0, t)
        assert len(data) == tuple_record_size(2, len(t.constraints))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 100000), tid=st.integers(0, 2**32 - 1))
    def test_roundtrip_random(self, seed, tid):
        t = random_bounded_tuple(random.Random(seed))
        got_tid, back = decode_tuple(encode_tuple(tid, t))
        assert got_tid == tid
        assert back == t


class TestHeapFile:
    def test_insert_fetch(self):
        heap = HeapFile(Pager())
        rid = heap.insert(b"hello world")
        assert heap.fetch(rid) == b"hello world"

    def test_many_records_span_pages(self):
        heap = HeapFile(Pager(page_size=256))
        rids = [heap.insert(bytes([i % 251]) * 40) for i in range(50)]
        assert heap.page_count > 1
        for i, rid in enumerate(rids):
            assert heap.fetch(rid) == bytes([i % 251]) * 40

    def test_delete(self):
        heap = HeapFile(Pager())
        rid = heap.insert(b"gone")
        heap.delete(rid)
        with pytest.raises(StorageError):
            heap.fetch(rid)
        with pytest.raises(StorageError):
            heap.delete(rid)

    def test_scan_skips_deleted(self):
        heap = HeapFile(Pager())
        keep = heap.insert(b"keep")
        drop = heap.insert(b"drop")
        heap.delete(drop)
        assert [(rid, data) for rid, data in heap.scan()] == [(keep, b"keep")]

    def test_oversized_record_rejected(self):
        heap = HeapFile(Pager(page_size=128))
        with pytest.raises(PageOverflowError):
            heap.insert(bytes(500))

    def test_fetch_costs_one_page_read(self):
        pager = Pager()
        heap = HeapFile(pager)
        rid = heap.insert(b"x" * 10)
        with pager.measure() as scope:
            heap.fetch(rid)
        assert scope.delta.logical_reads == 1

    def test_fetch_batch_deduplicates_pages(self):
        pager = Pager()
        heap = HeapFile(pager)
        rids = [heap.insert(b"r" * 20) for _ in range(30)]
        assert heap.page_count == 1
        with pager.measure() as scope:
            records = heap.fetch_batch(rids)
        assert scope.delta.logical_reads == 1
        assert len(records) == 30

    def test_fetch_batch_deleted_raises(self):
        heap = HeapFile(Pager())
        rid = heap.insert(b"z")
        heap.delete(rid)
        with pytest.raises(StorageError):
            heap.fetch_batch([rid])
