"""Buffer-pool pinning: eviction protection for batch refinement."""

import pytest

from repro.errors import StorageError
from repro.storage import BufferPool, DiskSimulator, Pager


def _pool(capacity, pages=3):
    disk = DiskSimulator()
    pool = BufferPool(disk, capacity)
    return disk, pool, [disk.allocate() for _ in range(pages)]


class TestPinning:
    def test_pinned_frame_survives_eviction_pressure(self):
        disk, pool, (a, b, c) = _pool(capacity=2)
        pool.read(a)
        pool.pin(a)
        pool.read(b)
        pool.read(c)  # a is LRU but pinned: b gets evicted instead
        reads = disk.stats.physical_reads
        pool.read(a)
        assert disk.stats.physical_reads == reads  # still cached
        pool.read(b)
        assert disk.stats.physical_reads == reads + 1  # b was the victim

    def test_unpin_resumes_eviction(self):
        disk, pool, (a, b, c) = _pool(capacity=2)
        pool.read(a)
        pool.read(b)
        for pid in (a, b, c):
            pool.pin(pid)  # pre-pin c before it is resident (scope style)
        pool.read(c)
        assert len(pool._frames) == 3  # transiently oversized: all pinned
        pool.unpin(a)
        assert len(pool._frames) == 2  # shrink resumed: a evicted
        pool.unpin(b)
        pool.unpin(c)
        assert pool.pinned_pages == 0

    def test_pins_nest(self):
        disk, pool, (a, b, _) = _pool(capacity=1)
        pool.read(a)
        pool.pin(a)
        pool.pin(a)
        pool.unpin(a)
        pool.read(b)  # still pinned once: a must survive
        reads = disk.stats.physical_reads
        pool.read(a)
        assert disk.stats.physical_reads == reads
        pool.unpin(a)
        assert pool.pinned_pages == 0

    def test_unpin_unpinned_raises(self):
        _, pool, (a, *_) = _pool(capacity=2)
        with pytest.raises(StorageError):
            pool.unpin(a)

    def test_zero_capacity_pin_is_noop(self):
        _, pool, (a, *_) = _pool(capacity=0)
        pool.pin(a)
        pool.unpin(a)  # no error either way: there are no frames to protect
        assert pool.pinned_pages == 0

    def test_clear_drops_pins(self):
        _, pool, (a, *_) = _pool(capacity=2)
        pool.read(a)
        pool.pin(a)
        pool.clear()
        assert pool.pinned_pages == 0
        with pytest.raises(StorageError):
            pool.unpin(a)


class TestPagerPinnedScope:
    def test_scope_caps_physical_reads_under_tiny_pool(self):
        pager = Pager(buffer_frames=1)
        pids = [pager.allocate() for _ in range(3)]
        for pid in pids:
            pager.write(pid, bytes(1024))
        pager.cool_down()
        before = pager.disk.stats.physical_reads
        with pager.pinned(pids):
            for pid in pids + pids:  # two rounds over 3 pages, 1 frame
                pager.read(pid)
        # each distinct page read physically at most once inside the scope
        assert pager.disk.stats.physical_reads - before == len(pids)
        assert pager.buffer.pinned_pages == 0  # all released on exit

    def test_scope_releases_on_error(self):
        pager = Pager(buffer_frames=2)
        pid = pager.allocate()
        pager.write(pid, bytes(1024))
        with pytest.raises(RuntimeError):
            with pager.pinned([pid]):
                assert pager.buffer.pinned_pages == 1
                raise RuntimeError("boom")
        assert pager.buffer.pinned_pages == 0
