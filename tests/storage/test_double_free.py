"""Double-free rejection across every disk/pager implementation."""

import pytest

from repro.errors import DoubleFreeError, StorageError
from repro.storage import DiskSimulator, FileDisk, Pager


@pytest.fixture(params=["sim", "file-none", "file-wal"])
def disk(request, tmp_path):
    if request.param == "sim":
        yield DiskSimulator(page_size=128)
        return
    durability = request.param.split("-")[1]
    d = FileDisk(str(tmp_path / "d"), page_size=128, durability=durability)
    yield d
    d.close()


def test_double_free_raises_typed_error(disk):
    pid = disk.allocate()
    disk.free(pid)
    with pytest.raises(DoubleFreeError, match="already free"):
        disk.free(pid)


def test_double_free_is_a_storage_error(disk):
    """Callers catching the generic class keep working."""
    pid = disk.allocate()
    disk.free(pid)
    with pytest.raises(StorageError):
        disk.free(pid)


def test_never_allocated_free_stays_generic(disk):
    with pytest.raises(StorageError) as exc:
        disk.free(99)
    assert not isinstance(exc.value, DoubleFreeError)


def test_failed_free_leaves_stats_untouched(disk):
    pid = disk.allocate()
    disk.free(pid)
    before = dict(disk.stats.__dict__)
    with pytest.raises(DoubleFreeError):
        disk.free(pid)
    assert disk.stats.__dict__ == before


def test_pager_free_rejected_before_counting(tmp_path):
    """Pager.free asks the disk first: a rejected free leaves the
    pager's own stats and cached frames untouched."""
    for pager in (
        Pager(page_size=128, buffer_frames=2),
        Pager(page_size=128, buffer_frames=2,
              disk=FileDisk(str(tmp_path / "d"), page_size=128)),
    ):
        pid = pager.allocate()
        pager.free(pid)
        frees_before = pager.stats.frees
        with pytest.raises(DoubleFreeError):
            pager.free(pid)
        assert pager.stats.frees == frees_before


def test_freed_page_is_reusable_after_rejection(disk):
    pid = disk.allocate()
    disk.free(pid)
    with pytest.raises(DoubleFreeError):
        disk.free(pid)
    assert disk.allocate() == pid  # LIFO free list intact
