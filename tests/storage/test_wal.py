"""Write-ahead log tests: framing, commit, replay, torn tails."""

import os
import zlib

import pytest

from repro.errors import FaultInjectedError, WalCorruptionError
from repro.storage.wal import (
    REC_ALLOC,
    REC_FREE,
    REC_PAGE,
    WriteAheadLog,
    _HEADER_SIZE,
)


def _wal(tmp_path, name="wal.rwl", page_size=128):
    return WriteAheadLog(str(tmp_path / name), page_size=page_size)


def test_roundtrip_and_batch_grouping(tmp_path):
    wal = _wal(tmp_path)
    wal.append_alloc(0)
    wal.append_page(0, b"\x01" * 128)
    seq1 = wal.commit()
    wal.append_alloc(1)
    wal.append_free(0)
    seq2 = wal.commit()
    assert (seq1, seq2) == (1, 2)
    batches = wal.replay()
    assert [b.seq for b in batches] == [1, 2]
    assert batches[0].records == [
        (REC_ALLOC, 0, None), (REC_PAGE, 0, b"\x01" * 128)]
    assert batches[1].records == [(REC_ALLOC, 1, None), (REC_FREE, 0, None)]
    wal.close()


def test_commit_is_idempotent_when_clean(tmp_path):
    wal = _wal(tmp_path)
    wal.append_alloc(0)
    seq = wal.commit()
    end = os.path.getsize(wal.path)
    assert wal.commit() == seq  # nothing appended since: no new marker
    assert os.path.getsize(wal.path) == end
    wal.close()


def test_uncommitted_tail_is_truncated_on_replay(tmp_path):
    wal = _wal(tmp_path)
    wal.append_alloc(0)
    wal.commit()
    wal.append_alloc(1)  # never committed
    wal.close()

    reopened = _wal(tmp_path)
    batches = reopened.replay()
    assert [b.seq for b in batches] == [1]
    # the dangling record was truncated away
    end = os.path.getsize(reopened.path)
    reopened.append_alloc(2)
    reopened.commit()
    assert os.path.getsize(reopened.path) > end
    assert reopened.replay()[-1].records == [(REC_ALLOC, 2, None)]
    reopened.close()


def test_corrupt_frame_stops_the_scan(tmp_path):
    wal = _wal(tmp_path)
    wal.append_alloc(0)
    wal.commit()
    first_batch_end = os.path.getsize(wal.path)
    wal.append_page(1, b"\x02" * 128)
    wal.commit()
    wal.close()

    path = str(tmp_path / "wal.rwl")
    with open(path, "r+b") as fh:  # flip a byte inside the second batch
        fh.seek(first_batch_end + 12)
        byte = fh.read(1)
        fh.seek(first_batch_end + 12)
        fh.write(bytes([byte[0] ^ 0xFF]))

    reopened = _wal(tmp_path)
    assert [b.seq for b in reopened.replay()] == [1]
    assert os.path.getsize(path) == first_batch_end
    reopened.close()


def test_replay_upto_bounds_recovery(tmp_path):
    wal = _wal(tmp_path)
    for n in range(3):
        wal.append_alloc(n)
        wal.commit()
    batches = wal.replay(upto_seq=2)
    assert [b.seq for b in batches] == [1, 2]
    assert wal.last_seq == 2  # the excluded batch is rolled back
    wal.close()


def test_fail_append_at_tears_the_frame(tmp_path):
    wal = _wal(tmp_path)
    wal.append_alloc(0)
    wal.commit()
    wal.fail_append_at = wal.appends_seen
    with pytest.raises(FaultInjectedError) as exc:
        wal.append_alloc(1)
    assert exc.value.op == "wal-append"
    wal.close()

    reopened = _wal(tmp_path)
    assert [b.seq for b in reopened.replay()] == [1]  # torn frame dropped
    reopened.close()


def test_header_validation(tmp_path):
    wal = _wal(tmp_path)
    wal.close()
    with pytest.raises(WalCorruptionError, match="page size"):
        _wal(tmp_path, page_size=256)
    path = str(tmp_path / "wal.rwl")
    with open(path, "r+b") as fh:
        fh.write(b"XXXX")
    with pytest.raises(WalCorruptionError, match="bad WAL header"):
        _wal(tmp_path)


def test_reset_empties_the_log(tmp_path):
    wal = _wal(tmp_path)
    wal.append_page(0, b"\x03" * 128)
    wal.commit()
    wal.reset()
    assert os.path.getsize(wal.path) == _HEADER_SIZE
    assert wal.replay() == []
    wal.close()


def test_frame_crc_covers_type_and_payload(tmp_path):
    """The documented frame layout: u32 crc32(type+payload) | u32 len."""
    wal = _wal(tmp_path)
    wal.append_alloc(7)
    wal.commit()
    with open(wal.path, "rb") as fh:
        raw = fh.read()
    crc, length = (
        int.from_bytes(raw[_HEADER_SIZE:_HEADER_SIZE + 4], "little"),
        int.from_bytes(raw[_HEADER_SIZE + 4:_HEADER_SIZE + 8], "little"),
    )
    body = raw[_HEADER_SIZE + 8:_HEADER_SIZE + 8 + length]
    assert body == bytes([REC_ALLOC]) + (7).to_bytes(4, "little")
    assert crc == zlib.crc32(body)
    wal.close()
