"""Workload generator tests: Section 5 parameters hold by construction."""

import math
import random

import pytest

from repro.errors import ConstraintError
from repro.workloads import (
    PAPER_WINDOW,
    SIZE_CLASSES,
    Window,
    bounding_rect_of,
    make_relation,
    polygon_tuple,
    random_edge_angles,
    unbounded_tuple,
)


class TestWindow:
    def test_paper_window(self):
        assert PAPER_WINDOW.area == 10000.0
        assert PAPER_WINDOW.contains(0, 0)
        assert PAPER_WINDOW.contains(-50, 50)
        assert not PAPER_WINDOW.contains(51, 0)

    def test_custom(self):
        w = Window(0, 0, 10, 20)
        assert w.width == 10 and w.height == 20 and w.area == 200


class TestEdgeAngles:
    def test_range_and_no_vertical(self):
        rng = random.Random(0)
        angles = random_edge_angles(rng, 500)
        assert all(0 <= a < math.pi for a in angles)
        assert all(abs(a - math.pi / 2) >= 0.05 for a in angles)


class TestPolygonTuple:
    def test_target_area_exact(self):
        rng = random.Random(1)
        for _ in range(30):
            target = rng.uniform(50, 3000)
            t = polygon_tuple(rng, (0.0, 0.0), target)
            if t is None:
                continue
            assert t.extension().area() == pytest.approx(target, rel=1e-6)

    def test_constraint_count_in_range(self):
        rng = random.Random(2)
        produced = []
        while len(produced) < 30:
            t = polygon_tuple(rng, (0.0, 0.0), 100.0)
            if t is not None:
                produced.append(len(t.constraints))
        assert all(3 <= m <= 6 for m in produced)

    def test_no_vertical_edges(self):
        rng = random.Random(3)
        count = 0
        while count < 30:
            t = polygon_tuple(rng, (0.0, 0.0), 100.0)
            if t is None:
                continue
            count += 1
            for atom in t.constraints:
                assert not atom.is_vertical

    def test_center_inside(self):
        rng = random.Random(4)
        count = 0
        while count < 30:
            center = (rng.uniform(-50, 50), rng.uniform(-50, 50))
            t = polygon_tuple(rng, center, 200.0)
            if t is None:
                continue
            count += 1
            assert t.satisfied_by(center)

    def test_bounded_aspect(self):
        # The compactness guard: diameter stays a small multiple of the
        # size implied by the area.
        rng = random.Random(5)
        count = 0
        while count < 40:
            t = polygon_tuple(rng, (0.0, 0.0), 100.0)
            if t is None:
                continue
            count += 1
            (lx, ly), (hx, hy) = t.extension().bounding_box()
            diameter = math.hypot(hx - lx, hy - ly)
            assert diameter < 20 * math.sqrt(100.0 / math.pi)


class TestMakeRelation:
    def test_cardinality_and_dimension(self):
        r = make_relation(50, "small", seed=0)
        assert len(r) == 50
        assert r.dimension == 2

    def test_reproducible(self):
        a = make_relation(20, "small", seed=9)
        b = make_relation(20, "small", seed=9)
        assert [t for _, t in a] == [t for _, t in b]

    def test_different_seeds_differ(self):
        a = make_relation(20, "small", seed=1)
        b = make_relation(20, "small", seed=2)
        assert [t for _, t in a] != [t for _, t in b]

    def test_size_classes(self):
        for size, (lo, hi) in SIZE_CLASSES.items():
            r = make_relation(30, size, seed=3)
            for _tid, t in r:
                area = t.extension().area()
                frac = area / PAPER_WINDOW.area
                assert lo * 0.99 <= frac <= hi * 1.01, (size, frac)

    def test_unknown_class_rejected(self):
        with pytest.raises(ConstraintError):
            make_relation(5, "huge")

    def test_all_satisfiable(self):
        r = make_relation(40, "medium", seed=4)
        assert all(t.is_satisfiable() for _, t in r)

    def test_bounding_rect(self):
        r = make_relation(40, "small", seed=5)
        xmin, ymin, xmax, ymax = bounding_rect_of(r)
        assert xmin < -30 and xmax > 30  # centers spread over the window
        assert (xmax - xmin) < 250


class TestUnboundedTuple:
    def test_always_unbounded_and_satisfiable(self):
        rng = random.Random(6)
        for _ in range(60):
            t = unbounded_tuple(rng)
            poly = t.extension()
            assert not poly.is_empty
            assert not poly.is_bounded
