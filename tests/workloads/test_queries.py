"""Query generator tests: selectivity calibration is exact."""

import random

import pytest

from repro.constraints.theta import Theta
from repro.core import ALL, EXIST
from repro.errors import QueryError
from repro.workloads import (
    actual_selectivity,
    intercept_for_selectivity,
    make_queries,
    make_relation,
    random_query,
    surface_values,
)


@pytest.fixture(scope="module")
def relation():
    return make_relation(200, "small", seed=42)


class TestSurfaceValues:
    def test_sorted_and_complete(self, relation):
        values = surface_values(relation, 0.3, "top")
        assert len(values) == len(relation)
        assert values == sorted(values)


class TestCalibration:
    @pytest.mark.parametrize("qtype", [ALL, EXIST])
    @pytest.mark.parametrize("theta", [Theta.GE, Theta.LE])
    @pytest.mark.parametrize("target", [0.05, 0.12, 0.40])
    def test_selectivity_hits_target(self, relation, qtype, theta, target):
        b = intercept_for_selectivity(relation, qtype, 0.37, theta, target)
        from repro.core import HalfPlaneQuery

        sel = actual_selectivity(
            relation, HalfPlaneQuery(qtype, 0.37, b, theta)
        )
        # order-statistic placement: within one tuple of the target
        assert abs(sel - target) <= 1.5 / len(relation) + 0.01

    def test_bad_selectivity_rejected(self, relation):
        with pytest.raises(QueryError):
            intercept_for_selectivity(relation, EXIST, 0.0, Theta.GE, 1.5)


class TestGenerators:
    def test_make_queries_count_and_band(self, relation):
        queries = make_queries(relation, 6, EXIST, seed=7)
        assert len(queries) == 6
        for q in queries:
            assert q.query_type == EXIST
            sel = actual_selectivity(relation, q)
            assert 0.05 <= sel <= 0.20  # 10-15% band plus stat slack

    def test_slope_range_respected(self, relation):
        queries = make_queries(
            relation, 10, ALL, seed=8, slope_range=(-0.5, 0.5)
        )
        assert all(-0.5 <= q.slope_2d <= 0.5 for q in queries)

    def test_random_query_defaults(self, relation):
        rng = random.Random(9)
        q = random_query(relation, rng)
        assert q.query_type in (ALL, EXIST)
        assert q.theta in (Theta.GE, Theta.LE)

    def test_reproducible(self, relation):
        a = make_queries(relation, 5, EXIST, seed=10)
        b = make_queries(relation, 5, EXIST, seed=10)
        assert a == b
