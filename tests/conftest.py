"""Shared fixtures and helpers for the test-suite.

Hypothesis runs under named profiles (select with the
``HYPOTHESIS_PROFILE`` environment variable, default ``ci``):

* ``ci`` — derandomized with a modest example budget and no deadline:
  reproducible tier-1 runs that cannot flake on a slow runner;
* ``dev`` — random seeds and a larger budget for local exploration;
* ``nightly`` — the heavyweight budget the scheduled CI job uses.
"""

from __future__ import annotations

import math
import os
import random

import pytest
from hypothesis import settings

from repro.constraints import GeneralizedRelation, GeneralizedTuple
from repro.workloads.generator import polygon_tuple, unbounded_tuple

settings.register_profile(
    "ci", max_examples=60, deadline=None, derandomize=True
)
settings.register_profile("dev", max_examples=100, deadline=None)
settings.register_profile(
    "nightly", max_examples=500, deadline=None, print_blob=True
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


def random_bounded_tuple(rng: random.Random) -> GeneralizedTuple:
    """A random satisfiable bounded polygon tuple (redraws until valid)."""
    while True:
        center = (rng.uniform(-50, 50), rng.uniform(-50, 50))
        t = polygon_tuple(rng, center, rng.uniform(20, 2000))
        if t is not None and t.is_satisfiable():
            return t


def random_mixed_relation(
    rng: random.Random, n: int, unbounded_fraction: float = 0.25
) -> GeneralizedRelation:
    """Bounded polygons mixed with unbounded tuples."""
    relation = GeneralizedRelation(name="mixed")
    while len(relation) < n:
        if rng.random() < unbounded_fraction:
            relation.add(unbounded_tuple(rng))
        else:
            relation.add(random_bounded_tuple(rng))
    return relation


@pytest.fixture(scope="session")
def triangle() -> GeneralizedTuple:
    """The (0,0)-(4,0)-(2,3) triangle used across geometry tests."""
    return GeneralizedTuple.from_vertices_2d([(0, 0), (4, 0), (2, 3)])


def assert_close(a: float, b: float, tol: float = 1e-9) -> None:
    assert math.isfinite(a) == math.isfinite(b), (a, b)
    if math.isinf(a) or math.isinf(b):
        assert a == b, (a, b)
    else:
        assert abs(a - b) <= tol * max(1.0, abs(a), abs(b)), (a, b)
