"""repro.tune: the learner, the cost model, and the rebuild paths."""

import math
import os

import pytest

from repro.core import DualIndexPlanner, SlopeSet
from repro.obs.slopelog import SlopeLog
from repro.storage.checkpoint import open_planner, save_planner
from repro.tune import (
    apply_tune,
    expected_distance,
    learn_slopes,
    predicted_improvement,
    propose,
    rebuild_planner,
    relation_from_planner,
)
from repro.tune.learner import TuneError
from repro.workloads import (
    make_queries,
    make_relation,
    skewed_queries,
    uniform_queries,
)


def _snapshot(slopes, types=None):
    log = SlopeLog(capacity=4096)
    for i, s in enumerate(slopes):
        log.record(s, (types or ["EXIST"])[i % len(types or ["EXIST"])])
    return log.snapshot()


# ----------------------------------------------------------------------
# learner
# ----------------------------------------------------------------------
class TestLearner:
    def test_recovers_repeated_hot_slopes_exactly(self):
        """Canned-query traffic: the medoids land *on* the repeated
        values (exact slope-set membership is the whole win)."""
        traffic = [0.75] * 50 + [-2.5] * 30 + [0.1] * 20
        learned = learn_slopes(_snapshot(traffic), k=3)
        assert set(learned) == {-2.5, 0.1, 0.75}

    def test_weight_follows_traffic_mass(self):
        """With k=2, the two heavy directions win over a straggler."""
        traffic = [1.0] * 45 + [-1.0] * 45 + [5.0] * 10
        learned = learn_slopes(_snapshot(traffic), k=2)
        assert list(learned) == [-1.0, 1.0]

    def test_near_vertical_clipped(self):
        learned = learn_slopes(_snapshot([1e9, 1e9, 1e9]), k=2)
        limit = math.tan(math.pi / 2.0 - 0.05)
        assert all(abs(s) <= limit + 1e-9 for s in learned)

    def test_pads_to_a_valid_slope_set(self):
        """A single observed direction still yields >= 2 slopes (a
        SlopeSet needs an interior for T2)."""
        learned = learn_slopes(_snapshot([0.5] * 9), k=4)
        assert len(learned) >= 2
        assert 0.5 in set(learned)

    def test_empty_evidence_rejected(self):
        with pytest.raises(TuneError):
            learn_slopes(_snapshot([]), k=3)

    def test_accepts_plain_sequences(self):
        learned = learn_slopes([0.5] * 90 + [-2.0] * 10, k=2)
        assert list(learned) == [-2.0, 0.5]


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------
class TestCostModel:
    def test_expected_distance_zero_on_members(self):
        assert expected_distance([0.5, 0.5], [0.5, 2.0]) == 0.0

    def test_expected_distance_is_angle_space(self):
        assert expected_distance([1.0], [0.0]) == pytest.approx(
            math.atan(1.0)
        )

    def test_predicted_improvement_prefers_matching_set(self):
        traffic = _snapshot([0.75] * 80 + [-2.5] * 20)
        report = predicted_improvement(
            traffic, SlopeSet.uniform_angles(3), [-2.5, 0.75]
        )
        assert report["predicted_cost_ratio"] < 0.1
        assert report["exact_fraction_learned"] == pytest.approx(1.0)
        assert report["exact_fraction_current"] == pytest.approx(0.0)

    def test_propose_decision(self):
        traffic = _snapshot([0.75] * 80 + [-2.5] * 20)
        decision = propose(traffic, SlopeSet.uniform_angles(3))
        assert decision.worthwhile
        # Only two distinct directions were observed, so k is capped —
        # no synthetic third slope wasting a tree.
        assert set(decision.learned) == {-2.5, 0.75}
        assert decision.evidence == 100
        doc = decision.to_dict()
        assert doc["worthwhile"] is True
        assert doc["learned_slopes"] == list(decision.learned)

    def test_propose_not_worthwhile_when_already_tuned(self):
        traffic = _snapshot([0.75] * 50 + [-2.5] * 50)
        decision = propose(traffic, [-2.5, 0.75])
        assert decision.prediction["predicted_cost_ratio"] == 1.0
        assert not decision.worthwhile


# ----------------------------------------------------------------------
# rebuild paths
# ----------------------------------------------------------------------
class TestRebuild:
    def test_rebuild_preserves_answers_bit_exactly(self):
        relation = make_relation(150, "small", seed=21)
        planner = DualIndexPlanner.build(
            relation, SlopeSet.uniform_angles(3)
        )
        queries = (
            skewed_queries(relation, 12, seed=21)
            + uniform_queries(relation, 12, seed=21)
            + make_queries(relation, 6, "ALL", seed=4)
        )
        rebuilt = rebuild_planner(planner, [-1.4, 0.36, 2.23])
        for q in queries:
            assert rebuilt.query(q).ids == planner.query(q).ids

    def test_rebuild_preserves_sparse_ids_after_deletes(self):
        relation = make_relation(40, "small", seed=8)
        planner = DualIndexPlanner.build(
            relation, SlopeSet.uniform_angles(3), dynamic=True
        )
        for tid in (0, 7, 13):
            planner.delete(tid)
        extracted = relation_from_planner(planner)
        assert set(tid for tid, _ in extracted) == \
            set(tid for tid, _ in relation) - {0, 7, 13}
        rebuilt = rebuild_planner(planner, [-1.0, 1.0])
        for q in make_queries(relation, 8, "EXIST", seed=5):
            assert rebuilt.query(q).ids == planner.query(q).ids

    def test_apply_tune_writes_a_new_data_dir(self, tmp_path):
        relation = make_relation(60, "small", seed=13)
        planner = DualIndexPlanner.build(
            relation, SlopeSet.uniform_angles(3)
        )
        src = str(tmp_path / "engine")
        out = str(tmp_path / "engine-tuned")
        save_planner(planner, src)
        before = sorted(os.listdir(src))
        queries = skewed_queries(relation, 10, seed=13)
        expected = [planner.query(q).ids for q in queries]

        rebuilt = apply_tune(src, out, [-1.4, 0.36, 2.23])
        assert list(rebuilt.index.slopes) == [-1.4, 0.36, 2.23]
        # The source directory is untouched (rollback = keep using it).
        assert sorted(os.listdir(src)) == before
        reopened = open_planner(out)
        try:
            assert list(reopened.index.slopes) == [-1.4, 0.36, 2.23]
            for q, ids in zip(queries, expected):
                assert reopened.query(q).ids == ids
        finally:
            reopened.index.pager.disk.close()

    def test_apply_tune_refuses_in_place(self, tmp_path):
        target = str(tmp_path / "engine")
        with pytest.raises(TuneError):
            apply_tune(target, target, [0.0, 1.0])
