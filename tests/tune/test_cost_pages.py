"""The online page-cost model behind the serve watchdog."""

import pytest

from repro.tune.cost import PageCostModel, nearest_anchor_distance


class TestNearestAnchorDistance:
    def test_zero_on_members(self):
        assert nearest_anchor_distance(0.5, [0.5, 2.0]) == 0.0

    def test_angle_space_not_slope_space(self):
        # In raw slope space 100 is much farther from 1 than 0 is; in
        # angle space the arctan compresses the tail.
        near = nearest_anchor_distance(100.0, [1.0])
        far = nearest_anchor_distance(0.0, [1.0])
        assert near < far

    def test_no_anchors_means_no_signal(self):
        assert nearest_anchor_distance(1.0, []) == 0.0


class TestPageCostModel:
    def test_uncalibrated_predicts_none(self):
        model = PageCostModel([0.0], min_samples=4)
        model.observe(0.0, 10)
        assert not model.calibrated
        assert model.predict(0.0) is None

    def test_learns_distance_slope(self):
        model = PageCostModel([0.0], min_samples=4)
        for d_slope, pages in [(0.0, 10), (0.0, 12), (1.0, 30), (1.0, 32)]:
            model.observe(d_slope, pages)
        assert model.calibrated
        assert 8.0 < model.predict(0.0) < 14.0
        assert 26.0 < model.predict(1.0) < 36.0

    def test_flat_distance_falls_back_to_mean(self):
        model = PageCostModel([0.0], min_samples=2)
        model.observe(0.0, 10)
        model.observe(0.0, 20)
        assert model.predict(5.0) == pytest.approx(15.0)

    def test_negative_fit_collapses_to_mean(self):
        # Pages *decreasing* with distance contradicts the theorems;
        # the model must degrade to the running mean, not extrapolate.
        model = PageCostModel([0.0], min_samples=4)
        for d_slope, pages in [(0.0, 30), (0.0, 32), (1.0, 10), (1.0, 12)]:
            model.observe(d_slope, pages)
        mean = (30 + 32 + 10 + 12) / 4
        assert model.predict(0.0) == pytest.approx(mean)
        assert model.predict(1.0) == pytest.approx(mean)

    def test_prediction_floor_is_one_page(self):
        model = PageCostModel([0.0], min_samples=2)
        model.observe(0.0, 0.0)
        model.observe(0.0, 0.0)
        assert model.predict(0.0) == 1.0

    def test_reset_anchors_restarts_calibration(self):
        model = PageCostModel([0.0], min_samples=2)
        model.observe(0.0, 10)
        model.observe(0.0, 12)
        assert model.calibrated
        model.reset_anchors([1.0, 2.0])
        assert not model.calibrated
        assert model.predict(1.0) is None
        assert model.anchors == [1.0, 2.0]

    def test_min_samples_floor(self):
        assert PageCostModel([0.0], min_samples=0).min_samples == 2

    def test_non_finite_anchors_dropped(self):
        model = PageCostModel([0.0, float("inf"), float("nan")])
        assert model.anchors == [0.0]

    def test_state_is_json_ready(self):
        model = PageCostModel([0.5], min_samples=2)
        model.observe(0.5, 4)
        state = model.state()
        assert state == {
            "anchors": [0.5],
            "samples": 1,
            "calibrated": False,
            "mean_pages": 4.0,
        }
