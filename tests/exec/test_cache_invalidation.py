"""Regression: mutation must invalidate the exec result cache.

``DualIndex.version`` is the cache key's freshness token; it must bump
on *every* mutation — build, insert, delete — or the batch executor
serves answers for a relation that no longer exists.
"""

import random

from repro.core import EXIST, DualIndexPlanner, HalfPlaneQuery, SlopeSet
from repro.exec import BatchExecutor
from repro.exec.cache import QueryResultCache
from repro.core.query import QueryResult
from repro.storage import Pager
from tests.conftest import random_bounded_tuple, random_mixed_relation

SLOPES = [-1.0, 0.5, 2.0]


def _dynamic_planner(n=12, seed=99):
    rng = random.Random(seed)
    relation = random_mixed_relation(rng, n)
    planner = DualIndexPlanner.build(
        relation,
        SlopeSet(SLOPES),
        pager=Pager(buffer_frames=8),
        dynamic=True,
    )
    return rng, relation, planner


def test_version_bumps_on_build_insert_and_delete():
    rng, relation, planner = _dynamic_planner()
    index = planner.index
    assert index.version == 1  # build itself is a mutation
    v = index.version
    planner.insert(len(relation), random_bounded_tuple(rng))
    assert index.version > v
    v = index.version
    planner.delete(len(relation))
    assert index.version > v


def test_cache_rejects_entries_from_older_version():
    cache = QueryResultCache(8)
    query = HalfPlaneQuery(EXIST, 0.5, 0.0, ">=")
    cache.put(query, QueryResult(ids={1, 2}), version=1)
    assert cache.get(query, version=1) is not None
    assert cache.get(query, version=2) is None  # any bump invalidates


def test_executor_never_serves_stale_results_after_delete():
    rng, relation, planner = _dynamic_planner()
    executor = BatchExecutor(planner)
    query = HalfPlaneQuery(EXIST, SLOPES[1], -1e6, ">=")  # matches every nonempty tuple
    before = executor.execute([query]).results[0].ids
    assert before == {tid for tid, _ in relation}
    # Warm the cache, then delete a tuple that is in the answer.
    assert executor.execute([query]).results[0].cached
    victim = sorted(before)[0]
    planner.delete(victim)
    after = executor.execute([query]).results[0]
    assert not after.cached
    assert victim not in after.ids
    assert after.ids == before - {victim}


def test_executor_never_serves_stale_results_after_insert():
    rng, relation, planner = _dynamic_planner()
    executor = BatchExecutor(planner)
    query = HalfPlaneQuery(EXIST, SLOPES[1], -1e6, ">=")
    before = executor.execute([query]).results[0].ids
    new_tid = max(before) + 1
    planner.insert(new_tid, random_bounded_tuple(rng))
    after = executor.execute([query]).results[0]
    assert not after.cached
    assert after.ids == before | {new_tid}


def test_rebuild_on_fresh_index_invalidates_shared_cache():
    """A cache shared across index generations must not leak answers
    from a previous build (versions restart, but any *change* rejects)."""
    rng, relation, planner = _dynamic_planner()
    executor = BatchExecutor(planner)
    query = HalfPlaneQuery(EXIST, SLOPES[0], -1e6, ">=")
    executor.execute([query])
    # Rebuild over a shrunk relation on a fresh index/planner.
    shrunk = random_mixed_relation(random.Random(7), 5)
    planner2 = DualIndexPlanner.build(
        shrunk, SlopeSet(SLOPES), pager=Pager(buffer_frames=8)
    )
    fresh = BatchExecutor(planner2).execute([query]).results[0]
    assert not fresh.cached
    assert fresh.ids == {tid for tid, _ in shrunk}
