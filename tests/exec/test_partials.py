"""Lean partials path and lazy columnar answers.

``BatchExecutor.execute_partials`` is the shard fan-out wire format: it
must be the same computation as ``execute`` — same answers, same
per-query accounting, same batch page accounting — minus the per-query
``QueryResult`` objects. ``QueryResult.set_lazy_ids`` is the handoff
that lets those columns cross into result objects without set
materialisation.
"""

import numpy as np
import pytest

from repro.bench.vector_bench import fan_batch
from repro.core import ALL, EXIST, DualIndexPlanner, HalfPlaneQuery, SlopeSet
from repro.core.query import QueryResult
from repro.exec import BatchExecutor
from repro.exec.partials import TECH_NAMES, ShardPartials
from repro.shard import ShardedDualIndex
from repro.workloads import make_relation


@pytest.fixture(scope="module")
def planner():
    relation = make_relation(250, "small", seed=7)
    return DualIndexPlanner.build(relation, SlopeSet.uniform_angles(3))


@pytest.fixture(scope="module")
def queries():
    batch = fan_batch(3, width=4)
    # Interior slopes exercise the vector-technique partials too.
    batch += [
        HalfPlaneQuery(EXIST, 0.123, 1.0, ">="),
        HalfPlaneQuery(ALL, -0.77, -2.0, "<="),
        # A duplicate, so partials share the first occurrence's columns.
        batch[0],
    ]
    return batch


class TestExecutePartialsParity:
    def test_matches_execute(self, planner, queries):
        full = BatchExecutor(planner, cache_size=0).execute(queries)
        parts = BatchExecutor(planner, cache_size=0).execute_partials(queries)
        assert len(parts) == len(queries)
        for j, result in enumerate(full.results):
            ids = set(parts.tid_column(j).tolist())
            if parts.extras[j]:
                ids |= parts.extras[j]
            assert ids == result.ids, queries[j]
            assert TECH_NAMES[parts.technique[j]] == result.technique
            assert parts.candidates[j] == result.candidates
            assert parts.false_hits[j] == result.false_hits
            assert (
                parts.accepted_without_refinement[j]
                == result.accepted_without_refinement
            )
            assert parts.refinement_pages_q[j] == result.refinement_pages

    def test_batch_accounting_matches_execute(self, planner, queries):
        full = BatchExecutor(planner, cache_size=0).execute(queries)
        parts = BatchExecutor(planner, cache_size=0).execute_partials(queries)
        assert parts.io.logical_reads == full.io.logical_reads
        assert parts.io.logical_writes == full.io.logical_writes
        assert parts.exact_groups == full.exact_groups
        assert parts.vector_groups == full.vector_groups
        assert parts.sweep_leaves == full.sweep_leaves
        assert parts.refinement_pages == full.refinement_pages
        assert parts.cache_hits == full.cache_hits
        assert parts.cache_misses == full.cache_misses

    def test_offsets_partition_tid_column(self, planner, queries):
        parts = BatchExecutor(planner, cache_size=0).execute_partials(queries)
        assert parts.offsets[0] == 0
        assert parts.offsets[-1] == parts.tids.size
        assert np.all(np.diff(parts.offsets) >= 0)

    def test_empty_batch(self, planner):
        parts = BatchExecutor(planner, cache_size=0).execute_partials([])
        assert len(parts) == 0
        assert parts.tids.size == 0


class TestShardedProcessFanout:
    @pytest.mark.parametrize("fanout", ["thread", "process"])
    def test_matches_unsharded(self, planner, queries, fanout):
        relation = make_relation(250, "small", seed=7)
        engine = ShardedDualIndex.build(
            relation, SlopeSet.uniform_angles(3), shards=2, fanout=fanout,
        )
        try:
            batch = engine.query_batch(queries)
            for q, res in zip(queries, batch.results):
                assert res.ids == planner.query(q).ids, q
        finally:
            engine.close()

    def test_invalid_fanout_rejected(self):
        from repro.errors import IndexError_

        relation = make_relation(40, "small", seed=7)
        with pytest.raises(IndexError_):
            ShardedDualIndex.build(
                relation, SlopeSet.uniform_angles(3), shards=2,
                fanout="carrier-pigeon",
            )


class TestLazyQueryResult:
    def test_single_column_materialises_once(self):
        res = QueryResult(technique="exact")
        res.set_lazy_ids(np.array([3, 1, 2], dtype=np.int64), {9})
        assert res.answer_count == 4
        assert res.lazy_id_columns() is not None
        assert res.ids == {1, 2, 3, 9}
        # Materialised: columns are gone, count comes from the set.
        assert res.lazy_id_columns() is None
        assert res.answer_count == 4

    def test_column_list_unions_disjoint_shards(self):
        res = QueryResult()
        res.set_lazy_ids(
            [np.array([1, 3], dtype=np.int64), np.array([2], dtype=np.int64)]
        )
        assert res.answer_count == 3
        assert res.ids == {1, 2, 3}

    def test_setter_clears_lazy_state(self):
        res = QueryResult()
        res.set_lazy_ids(np.array([5], dtype=np.int64))
        res.ids = {7}
        assert res.ids == {7}
        assert res.answer_count == 1

    def test_default_is_eager_empty_set(self):
        res = QueryResult()
        assert res.ids == set()
        assert res.answer_count == 0

    def test_repr_does_not_materialise(self):
        res = QueryResult(technique="exact")
        res.set_lazy_ids(np.array([1, 2], dtype=np.int64))
        assert "|ids|=2" in repr(res)
        assert res.lazy_id_columns() is not None


class TestShardPartialsContainer:
    def test_tid_column_is_view(self):
        parts = ShardPartials(
            tids=np.array([10, 11, 12], dtype=np.int64),
            offsets=np.array([0, 2, 3], dtype=np.int64),
            extras=[None, None],
            technique=np.zeros(2, dtype=np.uint8),
            candidates=np.zeros(2, dtype=np.int64),
            false_hits=np.zeros(2, dtype=np.int64),
            accepted_without_refinement=np.zeros(2, dtype=np.int64),
            refinement_pages_q=np.zeros(2, dtype=np.int64),
        )
        assert len(parts) == 2
        assert parts.tid_column(0).tolist() == [10, 11]
        assert parts.tid_column(1).tolist() == [12]
        assert parts.tid_column(0).base is parts.tids
