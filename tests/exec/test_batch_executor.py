"""Batch executor: answers identical to sequential, fewer pages, caching."""

import random

import pytest

from repro.constraints import Theta
from repro.core import ALL, EXIST, DualIndexPlanner, HalfPlaneQuery, SlopeSet
from repro.errors import QueryError
from repro.exec import BatchExecutor
from repro.storage import Pager
from tests.conftest import random_mixed_relation

SLOPES = [-1.5, 0.0, 1.5]

_STATE = {}


def _setup():
    if _STATE:
        return _STATE
    rng = random.Random(4242)
    relation = random_mixed_relation(rng, 60)
    _STATE["relation"] = relation
    _STATE["planner"] = DualIndexPlanner.build(
        relation, SlopeSet(SLOPES), pager=Pager(buffer_frames=8), key_bytes=4
    )
    return _STATE


def _mixed_batch() -> list[HalfPlaneQuery]:
    """Exact, interior and wrap slopes across all types and operators."""
    queries = []
    for slope in SLOPES + [0.7, -0.4, 8.0]:
        for qtype in (ALL, EXIST):
            for theta in (Theta.GE, Theta.LE):
                queries.append(HalfPlaneQuery(qtype, slope, 3.0, theta))
                queries.append(HalfPlaneQuery(qtype, slope, -11.0, theta))
    return queries


def test_batch_matches_sequential_mixed():
    state = _setup()
    queries = _mixed_batch()
    want = [state["planner"].query(q).ids for q in queries]
    batch = BatchExecutor(state["planner"]).execute(queries)
    assert [r.ids for r in batch.results] == want
    assert batch.exact_groups > 0 and batch.vector_groups > 0


def test_intra_batch_duplicate_is_a_cache_hit():
    state = _setup()
    q = HalfPlaneQuery(EXIST, 0.0, 2.0, ">=")
    batch = BatchExecutor(state["planner"]).execute([q, q, q])
    assert batch.cache_hits == 2
    assert [r.cached for r in batch.results] == [False, True, True]
    assert batch.results[0].ids == batch.results[1].ids == batch.results[2].ids


def test_repeated_batch_served_entirely_from_cache():
    state = _setup()
    queries = _mixed_batch()
    executor = BatchExecutor(state["planner"])
    first = executor.execute(queries)
    replay = executor.execute(queries)
    assert [r.ids for r in replay.results] == [r.ids for r in first.results]
    assert replay.page_accesses == 0
    assert replay.cache_hits == len(queries)
    assert all(r.cached for r in replay.results)


def test_same_slope_batch_uses_fewer_pages_than_sequential():
    state = _setup()
    queries = [
        HalfPlaneQuery(EXIST, SLOPES[1], 1.0 + 0.5 * i, ">=") for i in range(16)
    ]
    seq_pages = sum(state["planner"].query(q).page_accesses for q in queries)
    batch = BatchExecutor(state["planner"]).execute(queries)
    assert [r.ids for r in batch.results] == [
        state["planner"].query(q).ids for q in queries
    ]
    assert batch.exact_groups == 1
    assert batch.page_accesses < seq_pages


def test_threaded_fanout_matches_serial():
    state = _setup()
    queries = _mixed_batch()
    serial = BatchExecutor(state["planner"]).execute(queries)
    threaded = BatchExecutor(state["planner"], max_workers=4).execute(queries)
    assert [r.ids for r in threaded.results] == [r.ids for r in serial.results]


def test_insert_invalidates_cached_results():
    rng = random.Random(99)
    relation = random_mixed_relation(rng, 20)
    planner = DualIndexPlanner.build(
        relation, SlopeSet(SLOPES), pager=Pager(), key_bytes=4, dynamic=True
    )
    executor = BatchExecutor(planner)
    q = HalfPlaneQuery(EXIST, 0.0, 0.0, ">=")
    before = executor.execute([q]).results[0].ids

    from repro.constraints import parse_tuple

    new_tid = len(relation)
    planner.insert(new_tid, parse_tuple("y >= 1 and y <= 2 and x >= 0 and x <= 1"))
    after = executor.execute([q])
    assert not after.results[0].cached
    assert after.results[0].ids == before | {new_tid}
    assert executor.cache.invalidations >= 1


def test_rejects_non_2d_queries():
    state = _setup()
    bad = HalfPlaneQuery(EXIST, (1.0, 2.0), 0.0, ">=")
    with pytest.raises(QueryError):
        BatchExecutor(state["planner"]).execute([bad])


def test_empty_batch():
    state = _setup()
    batch = BatchExecutor(state["planner"]).execute([])
    assert batch.results == [] and batch.page_accesses == 0
