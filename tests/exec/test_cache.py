"""Unit tests for the batch result cache (LRU + version invalidation)."""

import pytest

from repro.core.query import HalfPlaneQuery, QueryResult
from repro.exec.cache import QueryResultCache, cache_key


def q(intercept: float, qtype: str = "EXIST") -> HalfPlaneQuery:
    return HalfPlaneQuery(qtype, 0.5, intercept, ">=")


def test_key_is_full_query_identity():
    assert cache_key(q(1.0)) == cache_key(q(1.0))
    assert cache_key(q(1.0)) != cache_key(q(2.0))
    assert cache_key(q(1.0)) != cache_key(q(1.0, "ALL"))
    assert cache_key(
        HalfPlaneQuery("EXIST", 0.5, 1.0, ">=")
    ) != cache_key(HalfPlaneQuery("EXIST", 0.5, 1.0, "<="))
    assert cache_key(
        HalfPlaneQuery("EXIST", 0.25, 1.0, ">=")
    ) != cache_key(HalfPlaneQuery("EXIST", 0.5, 1.0, ">="))


def test_hit_and_miss_counting():
    cache = QueryResultCache(capacity=4)
    assert cache.get(q(1.0), version=1) is None
    cache.put(q(1.0), QueryResult(ids={1}), version=1)
    assert cache.get(q(1.0), version=1).ids == {1}
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.hit_rate == 0.5


def test_lru_eviction_order():
    cache = QueryResultCache(capacity=2)
    cache.put(q(1.0), QueryResult(ids={1}), version=1)
    cache.put(q(2.0), QueryResult(ids={2}), version=1)
    assert cache.get(q(1.0), version=1) is not None  # 1.0 becomes MRU
    cache.put(q(3.0), QueryResult(ids={3}), version=1)  # evicts 2.0
    assert cache.get(q(2.0), version=1) is None
    assert cache.get(q(1.0), version=1) is not None
    assert cache.get(q(3.0), version=1) is not None


def test_version_change_invalidates_everything():
    cache = QueryResultCache(capacity=4)
    cache.put(q(1.0), QueryResult(ids={1}), version=1)
    assert cache.get(q(1.0), version=2) is None
    assert cache.invalidations == 1
    # and the old version's entries do not resurrect
    assert cache.get(q(1.0), version=1) is None


def test_zero_capacity_disables_caching():
    cache = QueryResultCache(capacity=0)
    cache.put(q(1.0), QueryResult(ids={1}), version=1)
    assert cache.get(q(1.0), version=1) is None
    assert len(cache) == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        QueryResultCache(capacity=-1)
