"""Property test: batched ALL/EXIST answers ≡ sequential per-query answers.

Random mixed-slope batches (exact-path, interior, and wrap-around
slopes, both query types and operators) against a shared executor whose
result cache persists across examples — caching must never change an
answer set.

Example budget and determinism come from the shared hypothesis profiles
registered in ``tests/conftest.py`` (``ci``/``dev``/``nightly``).
"""

import random

from hypothesis import given, strategies as st

from repro.core import ALL, EXIST, DualIndexPlanner, HalfPlaneQuery, SlopeSet
from repro.exec import BatchExecutor
from repro.storage import Pager
from tests.conftest import random_mixed_relation

SLOPES = [-1.0, 0.5, 2.0]

_STATE = {}


def _setup():
    if _STATE:
        return _STATE
    rng = random.Random(31337)
    relation = random_mixed_relation(rng, 40)
    planner = DualIndexPlanner.build(
        relation, SlopeSet(SLOPES), pager=Pager(buffer_frames=8), key_bytes=4
    )
    _STATE["planner"] = planner
    _STATE["executor"] = BatchExecutor(planner)
    return _STATE


_query = st.builds(
    HalfPlaneQuery,
    st.sampled_from([ALL, EXIST]),
    st.one_of(
        st.sampled_from(SLOPES),  # exact path (merged sweeps)
        st.floats(min_value=-2.5, max_value=2.5),  # interior (vectorized)
        st.floats(min_value=-30.0, max_value=30.0),  # wrap-around
    ),
    st.floats(min_value=-80.0, max_value=80.0),
    st.sampled_from([">=", "<="]),
)


@given(queries=st.lists(_query, min_size=1, max_size=8))
def test_batched_equals_sequential(queries):
    state = _setup()
    want = [state["planner"].query(q).ids for q in queries]
    batch = state["executor"].execute(queries)
    assert [r.ids for r in batch.results] == want
