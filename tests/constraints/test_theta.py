"""Operator model tests."""

import pytest

from repro.constraints import Theta
from repro.errors import ConstraintError


class TestParsing:
    def test_every_ascii_symbol(self):
        assert Theta.from_symbol("<=") is Theta.LE
        assert Theta.from_symbol(">=") is Theta.GE
        assert Theta.from_symbol("<") is Theta.LT
        assert Theta.from_symbol(">") is Theta.GT
        assert Theta.from_symbol("=") is Theta.EQ
        assert Theta.from_symbol("!=") is Theta.NE

    def test_aliases(self):
        assert Theta.from_symbol("≤") is Theta.LE
        assert Theta.from_symbol("≥") is Theta.GE
        assert Theta.from_symbol("≠") is Theta.NE
        assert Theta.from_symbol("==") is Theta.EQ
        assert Theta.from_symbol("<>") is Theta.NE
        assert Theta.from_symbol("=<") is Theta.LE
        assert Theta.from_symbol("=>") is Theta.GE

    def test_whitespace_tolerated(self):
        assert Theta.from_symbol("  <= ") is Theta.LE

    def test_unknown_symbol_raises(self):
        with pytest.raises(ConstraintError):
            Theta.from_symbol("~")


class TestAlgebra:
    def test_negation_is_involutive(self):
        for theta in Theta:
            assert theta.negated().negated() is theta

    def test_table1_negation(self):
        # The paper's ¬θ: ¬(>=) = <= and vice versa.
        assert Theta.GE.negated() is Theta.LE
        assert Theta.LE.negated() is Theta.GE

    def test_flip_is_involutive(self):
        for theta in Theta:
            assert theta.flipped().flipped() is theta

    def test_flip_preserves_solutions(self):
        # x <= 5  <=>  -x >= -5
        assert Theta.LE.flipped() is Theta.GE
        assert Theta.EQ.flipped() is Theta.EQ
        assert Theta.NE.flipped() is Theta.NE

    def test_closure(self):
        assert Theta.LT.closure() is Theta.LE
        assert Theta.GT.closure() is Theta.GE
        assert Theta.LE.closure() is Theta.LE
        assert Theta.EQ.closure() is Theta.EQ

    def test_classification(self):
        assert Theta.LE.is_weak_inequality
        assert Theta.GE.is_weak_inequality
        assert not Theta.EQ.is_weak_inequality
        assert Theta.LT.is_strict
        assert Theta.NE.is_strict
        assert not Theta.LE.is_strict


class TestEvaluation:
    def test_holds_basic(self):
        assert Theta.LE.holds(1.0, 2.0)
        assert not Theta.LE.holds(3.0, 2.0)
        assert Theta.GE.holds(3.0, 2.0)
        assert Theta.EQ.holds(2.0, 2.0)
        assert Theta.NE.holds(2.0, 3.0)
        assert Theta.LT.holds(1.0, 2.0)
        assert not Theta.LT.holds(2.0, 2.0)
        assert Theta.GT.holds(3.0, 2.0)

    def test_tolerance_loosens_weak(self):
        assert Theta.LE.holds(2.0 + 1e-12, 2.0, tol=1e-9)
        assert Theta.GE.holds(2.0 - 1e-12, 2.0, tol=1e-9)
        assert Theta.EQ.holds(2.0 + 1e-12, 2.0, tol=1e-9)

    def test_tolerance_tightens_strict(self):
        assert not Theta.LT.holds(2.0 - 1e-12, 2.0, tol=1e-9)
        assert not Theta.GT.holds(2.0 + 1e-12, 2.0, tol=1e-9)
        assert not Theta.NE.holds(2.0 + 1e-12, 2.0, tol=1e-9)

    def test_str(self):
        assert str(Theta.LE) == "<="
