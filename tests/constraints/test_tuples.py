"""GeneralizedTuple: normalisation, satisfiability, constructors."""

import pytest
from hypothesis import given, strategies as st

from repro.constraints import (
    GeneralizedTuple,
    LinearConstraint,
    Theta,
    normalize,
    parse_tuple,
)
from repro.errors import ConstraintError


class TestNormalization:
    def test_equality_splits(self):
        t = GeneralizedTuple([LinearConstraint((1.0, 1.0), -2.0, "=")])
        thetas = sorted(str(c.theta) for c in t.constraints)
        assert thetas == ["<=", ">="]

    def test_strict_closed(self):
        t = GeneralizedTuple([LinearConstraint((1.0, 0.0), 0.0, "<")])
        assert t.constraints[0].theta is Theta.LE

    def test_tautology_dropped(self):
        t = GeneralizedTuple(
            [
                LinearConstraint((0.0, 0.0), -1.0, "<="),
                LinearConstraint((1.0, 0.0), 0.0, "<="),
            ]
        )
        assert len(t) == 1

    def test_contradiction_flagged(self):
        t = GeneralizedTuple([LinearConstraint((0.0, 0.0), 1.0, "<=")])
        assert t.syntactically_false
        assert not t.is_satisfiable()

    def test_ne_rejected(self):
        with pytest.raises(ConstraintError):
            GeneralizedTuple([LinearConstraint((1.0, 0.0), 0.0, "!=")])

    def test_duplicates_removed(self):
        c = LinearConstraint((1.0, 0.0), 0.0, "<=")
        t = GeneralizedTuple([c, c, c])
        assert len(t) == 1

    def test_normalize_function(self):
        atoms, contradictory = normalize(
            [LinearConstraint((1.0,), 0.0, ">"), LinearConstraint((0.0,), 1.0, "<=")]
        )
        assert contradictory
        assert len(atoms) == 1
        assert atoms[0].theta is Theta.GE


class TestSemantics:
    def test_point_membership(self):
        t = parse_tuple("x <= 2 and y >= 3")
        assert t.satisfied_by((2.0, 3.0))
        assert t.satisfied_by((-100.0, 100.0))
        assert not t.satisfied_by((3.0, 3.0))

    def test_empty_tuple_unsatisfiable(self):
        assert not parse_tuple("x <= 0 and x >= 1", dimension=2).is_satisfiable()

    def test_geometric_emptiness_detected(self):
        # No single contradictory atom, but empty overall.
        t = parse_tuple("y >= x + 1 and y <= x - 1")
        assert not t.syntactically_false
        assert not t.is_satisfiable()

    def test_conjoin(self):
        a = parse_tuple("x >= 0", dimension=2)
        b = parse_tuple("x <= 1", dimension=2)
        both = a.conjoin(b)
        assert both.satisfied_by((0.5, 0.0))
        assert not both.satisfied_by((2.0, 0.0))

    def test_conjoin_dimension_mismatch(self):
        with pytest.raises(ConstraintError):
            parse_tuple("x1 <= 1", dimension=1).conjoin(parse_tuple("x <= 1 and y <= 1"))

    def test_equality_and_hash(self):
        a = parse_tuple("x <= 2 and y >= 3")
        b = parse_tuple("x <= 2 and y >= 3")
        assert a == b
        assert hash(a) == hash(b)

    def test_extension_cached(self):
        t = parse_tuple("x <= 2")
        assert t.extension() is t.extension()


class TestConstructors:
    def test_from_box(self):
        t = GeneralizedTuple.from_box((0.0, -1.0), (2.0, 1.0))
        assert t.satisfied_by((1.0, 0.0))
        assert not t.satisfied_by((3.0, 0.0))
        assert t.extension().area() == pytest.approx(4.0)

    def test_from_box_inverted_rejected(self):
        with pytest.raises(ConstraintError):
            GeneralizedTuple.from_box((2.0,), (1.0,))

    def test_from_vertices(self):
        t = GeneralizedTuple.from_vertices_2d([(0, 0), (2, 0), (0, 2)])
        assert t.satisfied_by((0.5, 0.5))
        assert not t.satisfied_by((2.0, 2.0))
        assert t.extension().area() == pytest.approx(2.0)

    def test_from_vertices_degenerate_rejected(self):
        with pytest.raises(ConstraintError):
            GeneralizedTuple.from_vertices_2d([(0, 0), (1, 1), (2, 2)])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-100, max_value=100),
                st.floats(min_value=-100, max_value=100),
            ),
            min_size=3,
            max_size=10,
        )
    )
    def test_from_vertices_contains_inputs(self, points):
        try:
            t = GeneralizedTuple.from_vertices_2d(points)
        except ConstraintError:
            return  # degenerate input set
        for p in points:
            assert t.satisfied_by(p, tol=1e-4)
