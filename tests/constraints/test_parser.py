"""Constraint expression parser tests."""

import pytest

from repro.constraints import Theta, parse_constraint, parse_tuple, parse_tuples
from repro.errors import ParseError


class TestParseConstraint:
    def test_simple(self):
        c = parse_constraint("x <= 2")
        assert c.coeffs == (1.0,)
        assert c.const == -2.0
        assert c.theta is Theta.LE

    def test_two_dims_inferred(self):
        c = parse_constraint("y >= 2x + 3")
        assert c.dimension == 2
        assert c.satisfied_by((0.0, 3.0))
        assert c.satisfied_by((1.0, 6.0))
        assert not c.satisfied_by((1.0, 4.0))

    def test_explicit_star(self):
        c = parse_constraint("2*x + 3*y <= 6")
        assert c.coeffs == (2.0, 3.0)
        assert c.const == -6.0

    def test_coefficient_without_star(self):
        c = parse_constraint("0.5x - y >= 0")
        assert c.coeffs == (0.5, -1.0)

    def test_xn_variables(self):
        c = parse_constraint("x1 + x2 - x3 <= 4")
        assert c.dimension == 3
        assert c.coeffs == (1.0, 1.0, -1.0)

    def test_both_sides(self):
        c = parse_constraint("2x + 1 <= x + 3")
        assert c.coeffs == (1.0, 0.0) or c.coeffs == (1.0,)
        assert c.const == pytest.approx(-2.0)

    def test_unicode_operator(self):
        assert parse_constraint("x ≤ 1").theta is Theta.LE

    def test_forced_dimension(self):
        c = parse_constraint("x <= 1", dimension=3)
        assert c.dimension == 3
        assert c.coeffs == (1.0, 0.0, 0.0)

    def test_dimension_too_small_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("x3 <= 1", dimension=2)

    def test_no_operator_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("x + 1")

    def test_two_operators_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("0 <= x <= 1")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("x ** 2 <= 1")

    def test_unknown_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("q5zz7 <= 1")

    def test_missing_sign_between_terms_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("2x 3y <= 1")


class TestParseTuple:
    def test_and_separator(self):
        t = parse_tuple("x <= 2 and y >= 3")
        assert len(t) == 2
        assert t.dimension == 2

    def test_other_separators(self):
        assert len(parse_tuple("x <= 2, y >= 3")) == 2
        assert len(parse_tuple("x <= 2 & y >= 3")) == 2
        assert len(parse_tuple("x <= 2 ∧ y >= 3")) == 2

    def test_dimension_unified_across_conjuncts(self):
        t = parse_tuple("x <= 2 and y >= 3")
        assert all(c.dimension == 2 for c in t.constraints)

    def test_label(self):
        assert parse_tuple("x <= 1", label="a").label == "a"

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_tuple("   ")

    def test_parse_tuples_shared_dimension(self):
        ts = parse_tuples(["x <= 1", "y >= 0 and x >= 0"])
        assert all(t.dimension == 2 for t in ts)

    def test_paper_example_2_1(self):
        # q1 ≡ y >= -x - 1 from Example 2.1
        t = parse_tuple("y >= -x - 1")
        assert t.satisfied_by((0.0, -1.0))
        assert t.satisfied_by((0.0, 0.0))
        assert not t.satisfied_by((0.0, -2.0))
