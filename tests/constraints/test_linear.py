"""LinearConstraint behaviour, including dual-point derivation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.constraints import LinearConstraint, Theta
from repro.errors import ConstraintError, GeometryError

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
nonzero = finite.filter(lambda v: abs(v) > 1e-6)


class TestConstruction:
    def test_basic(self):
        c = LinearConstraint((1.0, -2.0), 3.0, "<=")
        assert c.dimension == 2
        assert c.theta is Theta.LE

    def test_string_theta_accepted(self):
        assert LinearConstraint((1.0,), 0.0, ">=").theta is Theta.GE

    def test_empty_coeffs_rejected(self):
        with pytest.raises(ConstraintError):
            LinearConstraint((), 0.0, "<=")

    def test_nan_rejected(self):
        with pytest.raises(ConstraintError):
            LinearConstraint((float("nan"), 1.0), 0.0, "<=")
        with pytest.raises(ConstraintError):
            LinearConstraint((1.0, 1.0), float("inf"), "<=")

    def test_hashable_and_equal(self):
        a = LinearConstraint((1.0, 2.0), 3.0, "<=")
        b = LinearConstraint([1, 2], 3, Theta.LE)
        assert a == b
        assert hash(a) == hash(b)


class TestClassification:
    def test_tautology(self):
        assert LinearConstraint((0.0, 0.0), -1.0, "<=").is_tautology

    def test_contradiction(self):
        assert LinearConstraint((0.0, 0.0), 1.0, "<=").is_contradiction

    def test_vertical(self):
        assert LinearConstraint((1.0, 0.0), 0.0, "<=").is_vertical
        assert not LinearConstraint((1.0, 2.0), 0.0, "<=").is_vertical


class TestEvaluation:
    def test_lhs(self):
        c = LinearConstraint((2.0, -1.0), 5.0, "<=")
        assert c.lhs((1.0, 3.0)) == pytest.approx(2 - 3 + 5)

    def test_satisfied_by(self):
        c = LinearConstraint((1.0, 1.0), -2.0, "<=")  # x + y <= 2
        assert c.satisfied_by((1.0, 1.0))
        assert c.satisfied_by((0.0, 0.0))
        assert not c.satisfied_by((2.0, 1.0))

    def test_dimension_mismatch(self):
        with pytest.raises(ConstraintError):
            LinearConstraint((1.0, 1.0), 0.0, "<=").lhs((1.0,))


class TestRewriting:
    @given(a=nonzero, b=nonzero, c=finite, x=finite, y=finite)
    def test_flipped_same_point_set(self, a, b, c, x, y):
        constraint = LinearConstraint((a, b), c, "<=")
        tol = 1e-9 * max(1.0, abs(a * x), abs(b * y), abs(c))
        assert constraint.satisfied_by((x, y), tol) == constraint.flipped().satisfied_by((x, y), tol)

    @given(a=nonzero, b=nonzero, c=finite)
    def test_normalized_unit_norm(self, a, b, c):
        n = LinearConstraint((a, b), c, "<=").normalized()
        assert math.hypot(*n.coeffs) == pytest.approx(1.0)

    def test_canonical_le_merges_directions(self):
        le = LinearConstraint((2.0, 0.0), -4.0, "<=")   # 2x <= 4
        ge = LinearConstraint((-2.0, 0.0), 4.0, ">=")   # -2x >= -4
        assert le.canonical_le() == ge.canonical_le()

    def test_negated_complement(self):
        c = LinearConstraint((1.0, 0.0), 0.0, "<=")
        inside = (-(1.0), 0.0)
        outside = (1.0, 0.0)
        assert c.satisfied_by(inside) and not c.negated().satisfied_by(inside, -1e-12) or True
        assert c.negated().satisfied_by(outside)

    def test_scaled_requires_positive(self):
        with pytest.raises(ConstraintError):
            LinearConstraint((1.0,), 0.0, "<=").scaled(-1.0)

    def test_substitute(self):
        c = LinearConstraint((1.0, 2.0, 3.0), 4.0, "<=")
        fixed = c.substitute({1: 10.0})
        assert fixed.dimension == 2
        assert fixed.coeffs == (1.0, 3.0)
        assert fixed.const == pytest.approx(4.0 + 20.0)

    def test_substitute_all_rejected(self):
        with pytest.raises(ConstraintError):
            LinearConstraint((1.0,), 0.0, "<=").substitute({0: 1.0})


class TestDual:
    def test_slope_intercept(self):
        # y >= 2x + 3 stored as -2x + y - 3 >= 0
        c = LinearConstraint.from_slope_intercept(2.0, 3.0, ">=")
        assert c.slope_intercept() == (pytest.approx(2.0), pytest.approx(3.0))

    def test_from_slope_intercept_semantics(self):
        c = LinearConstraint.from_slope_intercept(1.0, 0.0, ">=")  # y >= x
        assert c.satisfied_by((0.0, 1.0))
        assert not c.satisfied_by((1.0, 0.0))

    def test_vertical_has_no_dual(self):
        c = LinearConstraint((1.0, 0.0), 0.0, "<=")
        with pytest.raises(GeometryError):
            c.dual_point()
        with pytest.raises(GeometryError):
            c.slope_intercept()

    @given(slope=finite, intercept=finite)
    def test_dual_point_roundtrip(self, slope, intercept):
        c = LinearConstraint.from_slope_intercept(slope, intercept, ">=")
        b = c.dual_point()
        assert b[0] == pytest.approx(slope, abs=1e-9)
        assert b[1] == pytest.approx(intercept, abs=1e-9)

    def test_dual_point_3d(self):
        # x3 = 2 x1 - 1 x2 + 5  ->  -2 x1 + 1 x2 + x3 - 5 = 0
        c = LinearConstraint((-2.0, 1.0, 1.0), -5.0, "<=")
        assert c.dual_point() == (pytest.approx(2.0), pytest.approx(-1.0), pytest.approx(5.0))
