"""GeneralizedRelation container tests."""

import pytest

from repro.constraints import GeneralizedRelation, parse_tuple
from repro.errors import ConstraintError


def test_add_and_get():
    r = GeneralizedRelation()
    tid = r.add(parse_tuple("x <= 1 and y <= 1"))
    assert r.get(tid).satisfied_by((0.0, 0.0))
    assert tid in r
    assert len(r) == 1


def test_ids_are_stable_and_never_reused():
    r = GeneralizedRelation()
    a = r.add(parse_tuple("x <= 1 and y <= 1"))
    b = r.add(parse_tuple("x >= 0 and y >= 0"))
    r.remove(a)
    c = r.add(parse_tuple("x <= 5 and y <= 5"))
    assert c not in (a, b)
    assert a not in r


def test_get_dead_id_raises():
    r = GeneralizedRelation()
    with pytest.raises(ConstraintError):
        r.get(0)


def test_dimension_enforced():
    r = GeneralizedRelation([parse_tuple("x <= 1 and y <= 1")])
    with pytest.raises(ConstraintError):
        r.add(parse_tuple("x1 + x2 + x3 <= 1"))


def test_iteration_sorted_by_id():
    r = GeneralizedRelation(
        [parse_tuple("x <= 1 and y <= 1"), parse_tuple("x >= 0 and y >= 0")]
    )
    assert [tid for tid, _ in r] == [0, 1]


def test_extend():
    r = GeneralizedRelation()
    ids = r.extend([parse_tuple("x <= 1 and y <= 1"), parse_tuple("y >= 2 and x >= 0")])
    assert ids == [0, 1]


def test_satisfiable_only():
    r = GeneralizedRelation(
        [
            parse_tuple("x <= 1 and y <= 1"),
            parse_tuple("x <= 0 and x >= 1", dimension=2),  # empty
        ]
    )
    filtered = r.satisfiable_only()
    assert len(filtered) == 1


def test_empty_relation_dimension_zero():
    assert GeneralizedRelation().dimension == 0
