"""Crash-recovery fuzz round tests (kill mid-write, reopen, verify)."""

import json
import os
import random

import pytest

from repro.errors import StorageError
from repro.storage import FileDisk
from repro.verify import (
    CrashPoint,
    arm_crash,
    replay_repro,
    run_recovery_case,
    run_recovery_scenario,
)
from repro.verify.differential import DEFAULT_SLOPES, make_recovery_case


def _case(seed, crash=None):
    rng = random.Random(seed)
    return make_recovery_case(rng, DEFAULT_SLOPES, 8, 6, crash=crash)


def test_make_recovery_case_is_deterministic():
    assert _case(3) == _case(3)
    case = _case(3)
    assert case["kind"] == "recovery"
    assert case["crash"]["point"] in ("wal-append", "checkpoint")
    assert len(case["tuples"]) == 8
    assert len(case["queries"]) == 6
    assert all(op[0] in ("insert", "delete")
               for op in case["committed"] + case["crashed"])


def test_recovery_survives_torn_wal_append():
    case = _case(7, crash=CrashPoint("wal-append", at=2))
    assert run_recovery_case(case) == []


def test_recovery_survives_mid_checkpoint_crash():
    case = _case(8, crash=CrashPoint("checkpoint", at=1))
    assert run_recovery_case(case) == []


def test_recovery_survives_single_byte_tear():
    case = _case(9, crash=CrashPoint("wal-append", at=1, torn_bytes=1))
    assert run_recovery_case(case) == []


@pytest.mark.parametrize("seed", range(4))
def test_recovery_sampled_random_crashes(seed):
    assert run_recovery_case(_case(seed)) == []


def test_scenario_writes_repros_and_artifacts(tmp_path):
    out = str(tmp_path / "repros")
    paths = run_recovery_scenario(seed=1, out_dir=out)
    assert len(paths) == 2
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            case = json.load(fh)
        assert case["kind"] == "recovery"
        # the repro replays green through the generic entry point
        assert replay_repro(path) == []
    for point in ("wal-append", "checkpoint"):
        artifact = os.path.join(out, f"recovery-seed1-{point}-data")
        names = os.listdir(artifact)
        assert "pages.rpg" in names  # crashed page file
        assert "wal.rwl" in names  # torn WAL, pre-recovery


def test_crash_point_json_roundtrip():
    crash = CrashPoint("wal-append", at=3, torn_bytes=5)
    assert CrashPoint.from_json(crash.to_json()) == crash
    assert CrashPoint.from_json({"point": "checkpoint", "at": 0}) == \
        CrashPoint("checkpoint", 0, None)


def test_arm_crash_requires_wal_mode(tmp_path):
    disk = FileDisk(str(tmp_path / "d"), durability="none")
    try:
        with pytest.raises(StorageError, match="durability='wal'"):
            arm_crash(disk, CrashPoint("wal-append"))
    finally:
        disk.close()


def test_arm_crash_sets_the_hooks(tmp_path):
    disk = FileDisk(str(tmp_path / "d"), durability="wal")
    try:
        arm_crash(disk, CrashPoint("wal-append", at=2, torn_bytes=3))
        assert disk.wal.fail_append_at == disk.wal.appends_seen + 2
        assert disk.wal.torn_bytes == 3
        arm_crash(disk, CrashPoint("checkpoint", at=1))
        assert disk.fail_checkpoint_after == 1
    finally:
        disk.close()
