"""The LP-backed brute-force oracle vs the exact geometric engine."""

import math
import random

import pytest

from repro.constraints import GeneralizedTuple, parse_tuple
from repro.constraints.theta import Theta
from repro.core import ALL, EXIST, HalfPlaneQuery
from repro.geometry import dual
from repro.geometry.predicates import all_halfplane, exist_halfplane
from repro.verify.oracle import BruteForceOracle, lp_feasible, lp_support
from repro.verify.workload import empty_tuple, singleton_tuple
from tests.conftest import random_bounded_tuple


@pytest.fixture(scope="module")
def oracle():
    return BruteForceOracle()


class TestLPPrimitives:
    def test_feasible_and_infeasible(self):
        t = parse_tuple("y >= x and y <= 4")
        assert lp_feasible(t.constraints)
        e = empty_tuple(random.Random(1))
        assert not lp_feasible(e.constraints)

    def test_support_bounded_unbounded_infeasible(self):
        t = parse_tuple("y >= 0 and y <= 4 and x >= 0 and x <= 2")
        assert lp_support(t.constraints, (0.0, 1.0)) == 4.0
        half = parse_tuple("y >= 0")
        assert lp_support(half.constraints, (0.0, 1.0)) == math.inf
        e = empty_tuple(random.Random(2))
        assert lp_support(e.constraints, (0.0, 1.0)) is None


class TestTopBot:
    def test_matches_geometric_engine_on_random_polygons(self, oracle):
        rng = random.Random(0xFEED)
        for _ in range(10):
            t = random_bounded_tuple(rng)
            poly = t.extension()
            for s in (-2.0, -0.5, 0.0, 0.5, 2.0):
                assert oracle.top(t, s) == pytest.approx(
                    dual.top(poly, s), rel=1e-6, abs=1e-6
                )
                assert oracle.bot(t, s) == pytest.approx(
                    dual.bot(poly, s), rel=1e-6, abs=1e-6
                )

    def test_unbounded_envelopes(self, oracle):
        t = parse_tuple("y >= 2*x + 1")
        assert oracle.top(t, 0.0) == math.inf
        assert oracle.bot(t, 0.0) == -math.inf
        assert oracle.bot(t, 2.0) == pytest.approx(1.0)

    def test_singleton(self, oracle):
        t = singleton_tuple(random.Random(3))
        s = 0.7
        assert oracle.top(t, s) == pytest.approx(oracle.bot(t, s))

    def test_empty_tuple_has_no_extrema(self, oracle):
        e = empty_tuple(random.Random(4))
        assert not oracle.is_satisfiable(e)
        assert oracle.top(e, 0.0) is None
        assert oracle.exist(e, 0.0, 0.0, ">=") is False
        assert oracle.all_(e, 0.0, 0.0, ">=") is True  # vacuous


class TestPredicates:
    def test_proposition_2_2_against_geometry(self, oracle):
        rng = random.Random(0xBEEF)
        for _ in range(6):
            t = random_bounded_tuple(rng)
            poly = t.extension()
            for s in (-1.0, 0.3):
                # Intercepts well away from the boundary: both oracles
                # must agree exactly (the waiver band is for boundaries).
                for b in (dual.top(poly, s) + 5.0, dual.bot(poly, s) - 5.0):
                    for theta in (Theta.GE, Theta.LE):
                        assert oracle.exist(t, s, b, theta) == exist_halfplane(
                            poly, s, b, theta
                        )
                        assert oracle.all_(t, s, b, theta) == all_halfplane(
                            poly, s, b, theta
                        )

    def test_holds_and_answer(self, oracle):
        t = parse_tuple("y >= x and y <= 4 and x >= 0")
        q = HalfPlaneQuery(EXIST, 0.0, 2.0, ">=")
        assert oracle.holds(q, t)
        assert oracle.answer([(0, t)], q) == {0}
        assert oracle.answer([(0, t)], q.with_type(ALL)) == set()

    def test_boundary_distance(self, oracle):
        t = GeneralizedTuple.from_box((0.0, 0.0), (2.0, 4.0))
        q = HalfPlaneQuery(EXIST, 0.0, 4.0, ">=")  # exactly at TOP
        assert oracle.boundary_distance(q, t) == pytest.approx(0.0, abs=1e-6)
        far = HalfPlaneQuery(EXIST, 0.0, 10.0, ">=")
        assert oracle.boundary_distance(far, t) == pytest.approx(6.0, abs=1e-6)
        half = parse_tuple("y >= 0")
        assert oracle.boundary_distance(
            HalfPlaneQuery(EXIST, 0.0, 1.0, ">="), half
        ) == math.inf
