"""The fault-injection pager: scheduling, typed errors, clean state."""

import random

import pytest

from repro.core import EXIST, DualIndexPlanner, HalfPlaneQuery, SlopeSet
from repro.errors import FaultInjectedError, StorageError
from repro.geometry.predicates import evaluate_relation
from repro.verify.faults import FaultInjectingPager
from tests.conftest import random_mixed_relation

SLOPES = [-1.0, 0.5, 2.0]


class TestScheduling:
    def test_explicit_read_index_fires_once(self):
        pager = FaultInjectingPager(fail_read_at={1})
        pid = pager.allocate()
        pager.write(pid, b"x" * pager.page_size)
        pager.read(pid)  # read #0 passes
        with pytest.raises(FaultInjectedError) as err:
            pager.read(pid)  # read #1 fires
        assert err.value.op == "read"
        assert err.value.page_id == pid
        assert err.value.op_index == 1
        pager.read(pid)  # read #2 passes again
        assert pager.faults_raised == 1

    def test_rate_schedule_is_deterministic_in_seed(self):
        def trace(seed):
            pager = FaultInjectingPager(seed=seed, read_rate=0.5)
            pid = pager.allocate()
            pager.write(pid, b"y" * pager.page_size)
            outcomes = []
            for _ in range(20):
                try:
                    pager.read(pid)
                    outcomes.append(True)
                except FaultInjectedError:
                    outcomes.append(False)
            return outcomes

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)

    def test_fault_raised_before_state_changes(self):
        pager = FaultInjectingPager(fail_write_at={0})
        pid = pager.allocate()
        reads, writes = pager.stats.logical_reads, pager.stats.logical_writes
        with pytest.raises(FaultInjectedError):
            pager.write(pid, b"z" * pager.page_size)
        # No counter moved and no frame was dirtied by the failed write.
        assert pager.stats.logical_writes == writes
        assert pager.stats.logical_reads == reads
        assert not pager.buffer._dirty

    def test_disarmed_scope(self):
        pager = FaultInjectingPager(read_rate=1.0)
        pid = pager.allocate()
        pager.write(pid, b"w" * pager.page_size)
        with pager.disarmed():
            pager.read(pid)  # injection suspended
        assert pager.armed
        with pytest.raises(FaultInjectedError):
            pager.read(pid)

    def test_is_a_storage_error(self):
        assert issubclass(FaultInjectedError, StorageError)


class TestIndexSurvivesFaults:
    def test_query_surfaces_typed_error_and_state_stays_clean(self):
        relation = random_mixed_relation(random.Random(21), 12)
        pager = FaultInjectingPager()
        pager.armed = False
        planner = DualIndexPlanner.build(
            relation, SlopeSet(SLOPES), pager=pager
        )
        query = HalfPlaneQuery(EXIST, SLOPES[0], 0.0, ">=")
        expected = evaluate_relation(
            relation, "EXIST", SLOPES[0], 0.0, query.theta
        )
        pager.fail_read_at = frozenset({0})
        pager.reads_seen = 0
        pager.armed = True
        with pytest.raises(FaultInjectedError):
            planner.query(query)
        pager.armed = False
        # The failed query corrupted nothing: same answer as the oracle.
        assert planner.query(query).ids == expected
