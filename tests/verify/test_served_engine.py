"""The served engine inside the differential regime.

``run_checks`` registers ``served-cold`` and ``served-hot`` paths —
the same queries through a real localhost server socket — against the
same geometric oracle as every in-process engine. These tests pin that
registration and prove a wire-layer corruption would be caught.
"""

import random

import pytest

from repro.verify import workload
from repro.verify.differential import DEFAULT_SLOPES, run_checks


def _case(seed, n=10, count=8):
    rng = random.Random(seed)
    tuples = [workload.bounded_tuple(rng) for _ in range(n)]
    return tuples, workload.random_queries(rng, count, DEFAULT_SLOPES)


def test_run_checks_includes_served_paths():
    tuples, queries = _case(seed=3)
    assert run_checks(tuples, queries, DEFAULT_SLOPES) == []


def test_served_divergence_would_be_reported(monkeypatch):
    """Corrupt the wire path (drop one id from every served answer) and
    require run_checks to flag exactly the served paths."""
    from repro.serve.client import SyncReproClient

    real_query_ids = SyncReproClient.query_ids

    def corrupted(self, query):
        ids = real_query_ids(self, query)
        if ids:
            ids.discard(max(ids))
        return ids

    monkeypatch.setattr(SyncReproClient, "query_ids", corrupted)
    tuples, queries = _case(seed=5)
    findings = run_checks(
        tuples, queries, DEFAULT_SLOPES, check_invariants=False
    )
    served = {
        f["path"] for f in findings if f["kind"] == "path-divergence"
    }
    assert served, "corrupted served answers were not detected"
    assert served <= {"served-cold", "served-hot"}


@pytest.mark.fuzz
def test_served_engine_on_adversarial_mix():
    """Unbounded + singleton + empty tuples through the wire (nightly)."""
    rng = random.Random(29)
    tuples = workload.make_tuples(rng, 12)
    relation = workload.as_relation(tuples)
    queries = workload.random_queries(
        rng, 6, DEFAULT_SLOPES
    ) + workload.boundary_queries(relation, DEFAULT_SLOPES, rng, budget=6)
    assert run_checks(tuples, queries, DEFAULT_SLOPES) == []
