"""The differential runner: acceptance demos plus the extended fuzz tier.

The unmarked tests are the checked-in acceptance criteria: a short
deterministic differential run over all query paths with zero
disagreements, and a deliberately injected fault producing a clean typed
error plus a replayable minimised repro JSON. The ``fuzz``-marked test
is the extended budget for the scheduled CI job
(``pytest -m fuzz``).
"""

import json
import random

import pytest

from repro.core import ALL, EXIST, HalfPlaneQuery
from repro.errors import FaultInjectedError
from repro.verify import (
    FuzzConfig,
    minimize_case,
    replay_repro,
    run_checks,
    run_fault_scenario,
    run_fuzz,
)
from repro.verify import workload
from repro.verify.differential import (
    DEFAULT_SLOPES,
    query_from_json,
    query_to_json,
    tuple_from_json,
    tuple_to_json,
)


class TestRunChecks:
    def test_all_paths_agree_on_adversarial_workload(self):
        rng = random.Random(0xA11)
        tuples = workload.make_tuples(rng, 12)
        relation = workload.as_relation(tuples)
        queries = workload.random_queries(
            rng, 6, DEFAULT_SLOPES
        ) + workload.boundary_queries(relation, DEFAULT_SLOPES, rng, budget=6)
        assert run_checks(tuples, queries, DEFAULT_SLOPES) == []

    def test_bounded_round_includes_rtree(self):
        rng = random.Random(0xB0B)
        tuples = [workload.bounded_tuple(rng) for _ in range(8)]
        queries = workload.random_queries(rng, 8, DEFAULT_SLOPES)
        assert (
            run_checks(tuples, queries, DEFAULT_SLOPES, include_rtree=True)
            == []
        )

    def test_detects_a_wrong_answer(self, monkeypatch):
        """Sanity: the harness is not vacuously green — sabotage the
        vector path and the divergence must be reported."""
        from repro.geometry.vectorized import DualSurface

        rng = random.Random(0xBAD)
        tuples = [workload.bounded_tuple(rng) for _ in range(4)]
        queries = [HalfPlaneQuery(EXIST, 0.25, 0.0, ">=")]
        real_answer = DualSurface.answer

        def sabotaged(self, *args, **kwargs):
            ids = real_answer(self, *args, **kwargs)
            return ids - {min(ids)} if ids else {999}

        monkeypatch.setattr(DualSurface, "answer", sabotaged)
        findings = run_checks(
            tuples, queries, DEFAULT_SLOPES, check_invariants=False
        )
        assert any(f["kind"] == "path-divergence" for f in findings)
        assert any(f["path"] == "vector" for f in findings)


class TestSerialization:
    def test_tuple_and_query_roundtrip(self):
        rng = random.Random(5)
        for t in workload.make_tuples(rng, 5):
            back = tuple_from_json(tuple_to_json(t))
            assert back.constraints == t.constraints
        q = HalfPlaneQuery(ALL, -0.5, 3.25, "<=")
        assert query_from_json(query_to_json(q)) == q


class TestMinimization:
    def test_minimize_shrinks_to_the_culprit(self, monkeypatch):
        from repro.geometry.vectorized import DualSurface

        rng = random.Random(0xC0DE)
        tuples = [workload.bounded_tuple(rng) for _ in range(6)]
        queries = [
            HalfPlaneQuery(EXIST, 0.25, 0.0, ">="),
            HalfPlaneQuery(ALL, 0.25, 0.0, ">="),
            HalfPlaneQuery(EXIST, -0.75, 1.0, "<="),
        ]
        real_answer = DualSurface.answer

        def sabotaged(self, query_type, slope, intercept, theta):
            ids = real_answer(self, query_type, slope, intercept, theta)
            return ids | {777}  # always wrong when any tuple exists

        monkeypatch.setattr(DualSurface, "answer", sabotaged)
        small_t, small_q = minimize_case(
            tuples, queries, list(DEFAULT_SLOPES), include_rtree=False
        )
        assert len(small_t) == 1
        assert len(small_q) == 1


class TestFuzzAcceptance:
    def test_short_budget_zero_disagreements(self, tmp_path):
        """Acceptance: the differential oracle against all five paths."""
        report = run_fuzz(
            FuzzConfig(
                seed=1234,
                budget_seconds=3.0,
                out_dir=str(tmp_path),
            )
        )
        assert report.ok, report.disagreements
        assert report.rounds >= 2
        assert report.comparisons > 0
        assert report.repro_paths == []

    def test_fault_scenario_writes_replayable_repro(self, tmp_path):
        """Acceptance: injected fault → clean typed error + repro JSON."""
        error, path = run_fault_scenario(seed=9, out_dir=str(tmp_path))
        assert isinstance(error, FaultInjectedError)
        assert error.op == "read"
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["kind"] == "fault"
        assert payload["error"]["type"] == "FaultInjectedError"
        assert payload["tuples"]  # minimised but non-empty
        # Replay: the recorded fault fires again, cleanly.
        assert replay_repro(path) == []

    def test_differential_repro_replay_roundtrip(self, tmp_path):
        """A hand-written differential repro file replays through
        run_checks and (being healthy) reports no findings."""
        rng = random.Random(31)
        tuples = [workload.bounded_tuple(rng) for _ in range(3)]
        payload = {
            "kind": "differential",
            "seed": 31,
            "slopes": list(DEFAULT_SLOPES),
            "rtree": True,
            "tuples": [tuple_to_json(t) for t in tuples],
            "queries": [
                query_to_json(HalfPlaneQuery(EXIST, 0.5, 0.0, ">="))
            ],
            "findings": [],
        }
        path = tmp_path / "diff-manual.json"
        path.write_text(json.dumps(payload))
        assert replay_repro(str(path)) == []


@pytest.mark.fuzz
def test_extended_fuzz_budget(tmp_path):
    """The scheduled-CI budget: minutes, not seconds (pytest -m fuzz)."""
    report = run_fuzz(
        FuzzConfig(seed=0xF022, budget_seconds=120.0, out_dir=str(tmp_path))
    )
    assert report.ok, report.disagreements
