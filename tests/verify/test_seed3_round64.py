"""Regression: the fuzz seed-3 round-64 "dynamic" path divergence.

Minimized from ``repro fuzz --seed 3`` (first noted in PR 8): two
unbounded-above tuples on a dynamic T2 index; deleting one made the
survivor vanish from an interior-slope ``ALL(>=)`` answer.

Root cause: unbounded-above tuples carry ``TOP ≡ +inf`` strip
assignment keys. The bulk build's ``searchsorted(side="right")`` owner
maps a ``+inf`` assignment key to the last leaf, but the dynamic
handicap refresh walked directories with a strictly half-open
``[lo, hi)`` range — so with ``hi = +inf`` for the last leaf, keys
exactly at ``+inf`` were excluded. The refreshed LOW aggregate became
``NO_LOW``, the T2 secondary sweep never ran, and the unbounded tuple
was false-dismissed.
"""

import math
import random

from repro.core.planner import DualIndexPlanner
from repro.core.query import HalfPlaneQuery
from repro.geometry.predicates import evaluate_relation
from repro.verify import workload
from repro.verify.differential import (
    DEFAULT_SLOPES,
    mutation_round,
    tuple_from_json,
)

#: The two surviving tuples of the minimized case (original fuzz ids 3
#: and 6) — both unbounded-above cones, so every TOP key is +inf.
MINIMIZED_TUPLES = [
    {
        "label": None,
        "atoms": [
            {"coeffs": [8.929622810708247, 1.0],
             "const": -113.59026805618679, "theta": ">="},
            {"coeffs": [-0.3864893491773794, 1.0],
             "const": -18.665153218059864, "theta": ">="},
        ],
    },
    {
        "label": None,
        "atoms": [
            {"coeffs": [-1.0707869431058377, 1.0],
             "const": -45.59977362716512, "theta": ">="},
            {"coeffs": [3.454742396895173, 1.0],
             "const": 89.70077075058987, "theta": ">="},
        ],
    },
]

#: The interior-slope query that lost tuple 0 after the delete.
MINIMIZED_QUERY = HalfPlaneQuery(
    "ALL", 0.31886412369967854, 0.9561298049050464, ">="
)


class TestSeed3Round64:
    def test_minimized_delete_then_interior_all(self):
        """Delete one of two unbounded tuples; the survivor must still
        answer the interior ALL(>=) query after the handicap refresh."""
        tuples = [tuple_from_json(d) for d in MINIMIZED_TUPLES]
        relation = workload.as_relation(tuples)
        planner = DualIndexPlanner.build(
            relation, DEFAULT_SLOPES, technique="T2", dynamic=True
        )
        planner.delete(1)
        live = [(0, tuples[0])]
        q = MINIMIZED_QUERY
        expected = evaluate_relation(
            live, q.query_type, q.slope_2d, q.intercept, q.theta
        )
        assert expected == {0}, "oracle sanity: the survivor qualifies"
        assert planner.query(q).ids == expected
        assert planner.query_batch([q]).results[0].ids == expected

    def test_refreshed_aggregate_keeps_inf_assignment_keys(self):
        """After delete + refresh, the last leaf's LOW aggregate must
        still cover the surviving +inf-assigned tuple (not NO_LOW)."""
        tuples = [tuple_from_json(d) for d in MINIMIZED_TUPLES]
        relation = workload.as_relation(tuples)
        planner = DualIndexPlanner.build(
            relation, DEFAULT_SLOPES, technique="T2", dynamic=True
        )
        idx = planner.index
        keys0 = idx.compute_keys(tuples[0])
        assert keys0.assign_top[2]["prev"] == math.inf
        planner.delete(1)
        idx.refresh_handicaps()
        # down[2] (anchor slope 0.5) single leaf: LOW_PREV must equal the
        # survivor's BOT key (-inf), not the NO_LOW sentinel (+inf).
        visits = list(idx.down[2].sweep_up(None))
        assert len(visits) == 1
        assert visits[0].leaf.aux[0] == -math.inf

    def test_original_round_is_clean(self):
        """The exact failing fuzz round (seed 3, round 64) is clean."""
        rng = random.Random("3:64")
        findings = mutation_round(rng, DEFAULT_SLOPES, 14, 12)
        assert findings == []
