"""Invariant checkers: pass on healthy structures, fail on corrupted ones."""

import random

import pytest

from repro.constraints import GeneralizedTuple, parse_tuple
from repro.core import DualIndexPlanner, SlopeSet
from repro.errors import VerificationError
from repro.storage import Pager
from repro.verify.invariants import (
    check_btree,
    check_buffer_pool,
    check_dual_index,
    check_envelopes,
)
from tests.conftest import random_mixed_relation


@pytest.fixture(scope="module")
def planner():
    relation = random_mixed_relation(random.Random(11), 20)
    return DualIndexPlanner.build(
        relation, SlopeSet([-1.0, 0.5, 2.0]), pager=Pager(buffer_frames=8)
    )


class TestHealthyStructures:
    def test_index_and_trees_pass(self, planner):
        check_dual_index(planner.index)
        for tree in planner.index.up + planner.index.down:
            check_btree(tree)

    def test_buffer_pool_passes(self, planner):
        check_buffer_pool(planner.index.pager.buffer)

    def test_envelopes_pass_on_workload_tuples(self):
        rng = random.Random(12)
        for _tid, t in random_mixed_relation(rng, 10):
            check_envelopes(t)
        check_envelopes(GeneralizedTuple.from_box((1.0, 1.0), (1.0, 1.0)))
        check_envelopes(parse_tuple("y >= x and y >= -x"))  # wedge
        check_envelopes(parse_tuple("y >= 1 and y <= 0"))  # empty: no-op


class TestCorruptionDetected:
    def test_broken_leaf_ordering(self, planner):
        tree = planner.index.up[0]
        leaf_id = tree.first_leaf
        leaf = tree.read_leaf(leaf_id)
        original = list(leaf.keys)
        try:
            leaf.keys.reverse()
            tree.write_leaf(leaf_id, leaf)
            with pytest.raises(VerificationError):
                check_btree(tree)
        finally:
            leaf.keys[:] = original
            tree.write_leaf(leaf_id, leaf)
        check_btree(tree)  # restored

    def test_catalog_corruption(self, planner):
        index = planner.index
        tid = next(iter(index.rid_of))
        rid = index.rid_of[tid]
        try:
            index.tid_of[rid] = tid + 1_000_000
            with pytest.raises(VerificationError):
                check_dual_index(index)
        finally:
            index.tid_of[rid] = tid

    def test_buffer_pool_negative_pin(self, planner):
        pool = planner.index.pager.buffer
        pool._pins[12345] = -1
        try:
            with pytest.raises(VerificationError):
                check_buffer_pool(pool)
        finally:
            del pool._pins[12345]

    def test_buffer_pool_phantom_dirty_page(self, planner):
        pool = planner.index.pager.buffer
        pool._dirty.add(99999)
        try:
            with pytest.raises(VerificationError):
                check_buffer_pool(pool)
        finally:
            pool._dirty.discard(99999)
