"""Loadgen tests: both loop models against a live server, report shape."""

import asyncio

import pytest

from repro.bench.harness import dual_planner, queries_for
from repro.serve.loadgen import per_op_breakdown, run_loadgen, summarize
from repro.serve.server import ServeConfig
from repro.serve.testing import ServerThread

N, SIZE, K = 300, "small", 3


@pytest.fixture(scope="module")
def served():
    planner = dual_planner(N, SIZE, K)
    with ServerThread(engine=planner) as server:
        yield server


@pytest.fixture(scope="module")
def queries():
    return queries_for(N, SIZE, "EXIST", K, count=6)


def test_closed_loop_report(served, queries):
    report = asyncio.run(run_loadgen(
        "127.0.0.1", served.port, queries,
        mode="closed", requests=60, concurrency=4, warmup=10))
    assert report["completed"] == 60
    assert report["errors"] == 0
    assert report["qps"] > 0
    latency = report["latency_ms"]
    assert 0 < latency["p50"] <= latency["p99"] <= latency["max"]


def test_open_loop_report(served, queries):
    report = asyncio.run(run_loadgen(
        "127.0.0.1", served.port, queries,
        mode="open", requests=50, rate=500.0, concurrency=2))
    assert report["completed"] + report["overloaded"] \
        + report["errors"] == 50
    assert report["errors"] == 0
    assert report["mode"] == "open"


def test_open_loop_overload_counts_backpressure(queries):
    """An open-loop burst against a tiny queue produces OVERLOADED
    responses, counted in the report rather than failing it."""
    planner = dual_planner(N, SIZE, K)
    config = ServeConfig(max_queue_depth=1, max_delay=0.05, max_batch=512)
    with ServerThread(engine=planner, config=config) as server:
        report = asyncio.run(run_loadgen(
            "127.0.0.1", server.port, queries,
            mode="open", requests=80, rate=100_000.0, concurrency=2))
    assert report["overloaded"] > 0
    assert report["errors"] == 0
    assert report["completed"] + report["overloaded"] == 80


def test_loadgen_input_validation(queries):
    with pytest.raises(ValueError, match="at least one query"):
        asyncio.run(run_loadgen("127.0.0.1", 1, []))
    with pytest.raises(ValueError, match="mode"):
        asyncio.run(run_loadgen("127.0.0.1", 1, queries, mode="sideways"))
    with pytest.raises(ValueError, match="rate"):
        asyncio.run(run_loadgen(
            "127.0.0.1", 1, queries, mode="open", rate=0.0))


def test_summarize_percentiles():
    summary = summarize([i / 1000.0 for i in range(1, 101)])
    assert summary["p50"] == pytest.approx(50.0, abs=2.0)
    assert summary["p99"] == pytest.approx(99.0, abs=2.0)
    assert summary["p99"] <= summary["p99_9"] <= summary["max"]
    assert summary["max"] == pytest.approx(100.0)
    assert summarize([]) == {
        "p50": 0.0, "p90": 0.0, "p99": 0.0, "p99_9": 0.0,
        "mean": 0.0, "max": 0.0}


def test_per_op_breakdown_shapes():
    samples = [
        (0.001, "EXIST", 4.0),
        (0.002, "EXIST", 8.0),
        (0.004, "ALL", None),
    ]
    table = per_op_breakdown(samples)
    assert sorted(table) == ["ALL", "EXIST"]
    exist = table["EXIST"]
    assert exist["count"] == 2
    assert exist["latency_ms"]["p50"] == pytest.approx(1.0, abs=1.1)
    assert set(exist["latency_ms"]) == {"p50", "p99", "p99_9", "mean"}
    assert exist["pages"] == {"mean": 6.0, "max": 8.0}
    # pages column omitted (not zeroed) when the server never sent any
    assert "pages" not in table["ALL"]


def test_report_carries_per_op_and_p99_9(served, queries):
    report = asyncio.run(run_loadgen(
        "127.0.0.1", served.port, queries,
        mode="closed", requests=40, concurrency=4))
    assert "p99_9" in report["latency_ms"]
    assert report["per_op"]["EXIST"]["count"] == 40
    # untraced server: no pages column, no traced marker
    assert "pages" not in report["per_op"]["EXIST"]
    assert "traced" not in report


def test_traced_loadgen_against_traced_server(queries):
    planner = dual_planner(N, SIZE, K)
    with ServerThread(engine=planner, trace_sample=4) as server:
        report = asyncio.run(run_loadgen(
            "127.0.0.1", server.port, queries,
            mode="closed", requests=40, concurrency=4,
            trace=True, trace_sample=8))
    assert report["errors"] == 0
    assert report["traced"] is True
    # the traced server attributes pages per request
    assert report["per_op"]["EXIST"]["pages"]["mean"] >= 0.0
