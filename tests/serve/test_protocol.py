"""Wire-protocol property tests: framing round-trips, torn frames,
oversize and garbage rejection, envelope validation."""

import json
import struct

import pytest
from hypothesis import given, strategies as st

from repro.core.query import HalfPlaneQuery
from repro.errors import (
    FrameTooLargeError,
    ProtocolError,
    TruncatedFrameError,
)
from repro.serve.protocol import (
    MAGIC,
    FrameDecoder,
    decode_frames,
    encode_frame,
    error_response,
    query_from_request,
    query_to_request,
    validate_request,
    validate_trace_field,
)

# JSON-representable payloads (ints bounded: json round-trips floats
# through repr, and huge ints are legal but uninteresting here).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)
_payloads = st.dictionaries(
    st.text(max_size=10),
    st.one_of(_scalars, st.lists(_scalars, max_size=5)),
    max_size=8,
)


@given(_payloads)
def test_roundtrip_single_frame(payload):
    assert decode_frames(encode_frame(payload)) == [payload]


@given(st.lists(_payloads, min_size=1, max_size=6), st.data())
def test_roundtrip_stream_in_arbitrary_chunks(payloads, data):
    """Any chunking of a frame stream decodes to the same objects in
    order — the decoder is agnostic to how TCP slices the bytes."""
    stream = b"".join(encode_frame(p) for p in payloads)
    decoder = FrameDecoder()
    out = []
    position = 0
    while position < len(stream):
        step = data.draw(
            st.integers(min_value=1, max_value=len(stream) - position))
        out.extend(decoder.feed(stream[position:position + step]))
        position += step
    decoder.finish()
    assert out == payloads


@given(_payloads, st.data())
def test_torn_frame_raises_truncated(payload, data):
    """EOF at any interior byte boundary is a typed truncation error."""
    frame = encode_frame(payload)
    cut = data.draw(st.integers(min_value=1, max_value=len(frame) - 1))
    decoder = FrameDecoder()
    assert decoder.feed(frame[:cut]) == []
    assert decoder.pending_bytes == cut
    with pytest.raises(TruncatedFrameError):
        decoder.finish()


@given(st.binary(min_size=4, max_size=64))
def test_garbage_prefix_rejected(junk):
    """Anything not starting with the magic fails immediately — before
    any length is trusted."""
    if junk[:4] == MAGIC:
        junk = b"XXXX" + junk[4:]
    with pytest.raises(ProtocolError):
        FrameDecoder().feed(junk)


def test_oversized_header_rejected_before_payload():
    header = struct.pack(">4sI", MAGIC, 2**31)
    with pytest.raises(FrameTooLargeError):
        FrameDecoder(max_frame=1024).feed(header)


def test_oversized_encode_rejected():
    with pytest.raises(FrameTooLargeError):
        encode_frame({"blob": "x" * 2048}, max_frame=1024)


def test_exactly_max_frame_passes():
    payload = {"k": "v"}
    exact = len(json.dumps(payload, separators=(",", ":")))
    frame = encode_frame(payload, max_frame=exact)
    assert FrameDecoder(max_frame=exact).feed(frame) == [payload]


def test_non_object_payload_rejected():
    body = json.dumps([1, 2, 3]).encode()
    raw = struct.pack(">4sI", MAGIC, len(body)) + body
    with pytest.raises(ProtocolError, match="JSON object"):
        decode_frames(raw)


def test_non_json_payload_rejected():
    body = b"\xff\xfe not json"
    raw = struct.pack(">4sI", MAGIC, len(body)) + body
    with pytest.raises(ProtocolError, match="not valid JSON"):
        decode_frames(raw)


# ----------------------------------------------------------------------
# request envelopes
# ----------------------------------------------------------------------
@given(
    st.sampled_from(["ALL", "EXIST"]),
    st.floats(min_value=-1e6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=-1e6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    st.sampled_from([">=", "<="]),
    st.integers(min_value=0, max_value=2**31),
)
def test_query_request_roundtrip(qtype, slope, intercept, theta, rid):
    query = HalfPlaneQuery(qtype, slope, intercept, theta)
    envelope = validate_request(query_to_request(query, rid))
    # JSON floats round-trip exactly through repr, so the rebuilt query
    # is bit-identical — the differential fuzzer depends on this.
    rebuilt = query_from_request(
        json.loads(json.dumps(envelope)))
    assert rebuilt == query


@pytest.mark.parametrize("bad", [
    {},                                         # no id, no op
    {"id": -1, "op": "ping"},                   # negative id
    {"id": True, "op": "ping"},                 # bool is not an int here
    {"id": 1, "op": "frobnicate"},              # unknown op
    {"id": 1, "op": "query", "type": "SOME",
     "slope": 1, "intercept": 0, "theta": ">="},
    {"id": 1, "op": "query", "type": "ALL",
     "slope": "steep", "intercept": 0, "theta": ">="},
    {"id": 1, "op": "query", "type": "ALL",
     "slope": 1, "intercept": 0, "theta": "=="},
    {"id": 1, "op": "query", "type": "ALL",
     "slope": [], "intercept": 0, "theta": ">="},
    {"id": 1, "op": "insert", "tid": "seven", "tuple": []},
    {"id": 1, "op": "insert", "tid": 7, "tuple": "nope"},
    {"id": 1, "op": "delete", "tid": None},
])
def test_bad_envelopes_rejected(bad):
    with pytest.raises(ProtocolError):
        validate_request(bad)


def test_error_response_shape():
    response = error_response(9, "OVERLOADED", "back off")
    assert response == {
        "id": 9, "ok": False,
        "error": {"code": "OVERLOADED", "message": "back off"},
    }
    assert error_response(None, "INTERNAL", "x")["id"] == -1
    with pytest.raises(ValueError):
        error_response(1, "EBADF", "not a protocol code")


# ----------------------------------------------------------------------
# the trace-context field
# ----------------------------------------------------------------------
def test_trace_field_accepted_and_roundtrips():
    query = HalfPlaneQuery("EXIST", 0.5, 1.0, ">=")
    envelope = query_to_request(
        query, rid=3, trace={"id": "abc-1", "sampled": True})
    assert envelope["trace"] == {"id": "abc-1", "sampled": True}
    validate_request(envelope)
    assert query_from_request(envelope) == query


def test_trace_field_is_optional():
    query = HalfPlaneQuery("EXIST", 0.5, 1.0, ">=")
    envelope = query_to_request(query, rid=3)
    assert "trace" not in envelope
    validate_request(envelope)


def test_trace_field_on_any_op():
    validate_request(
        {"id": 1, "op": "stats", "trace": {"id": "t"}})


@pytest.mark.parametrize("bad_trace", [
    "not-an-object",
    ["id"],
    {},                               # id required
    {"id": ""},                       # empty id
    {"id": 7},                        # non-string id
    {"id": "x" * 65},                 # over MAX_TRACE_ID
    {"id": "has\nnewline"},           # unprintable
    {"id": "ok", "sampled": "yes"},   # non-bool sampled
])
def test_malformed_trace_field_rejected(bad_trace):
    envelope = {"id": 1, "op": "query", "type": "ALL", "slope": 1,
                "intercept": 0, "theta": ">=", "trace": bad_trace}
    with pytest.raises(ProtocolError):
        validate_request(envelope)


def test_validate_trace_field_direct():
    assert validate_trace_field({"id": "t"}) == {"id": "t"}
    with pytest.raises(ProtocolError, match="printable"):
        validate_trace_field({"id": "\x00"})
    with pytest.raises(ProtocolError, match="boolean"):
        validate_trace_field({"id": "t", "sampled": 1})
