"""Bit-identical replay of slow-query-log entries (repro slowlog)."""

import dataclasses
import json

import pytest

from repro.bench.harness import dual_planner, queries_for
from repro.obs.slowlog import load_jsonl
from repro.serve.protocol import query_to_request
from repro.serve.testing import ServerThread
from repro.storage.checkpoint import save_planner
from repro.verify.differential import replay_repro, write_repro
from repro.verify.slowlog_replay import (
    entry_to_repro,
    load_entry,
    replay_entry,
)

N, SIZE, K = 300, "small", 3


@pytest.fixture(scope="module")
def served_log(tmp_path_factory):
    """A saved engine plus the slow-query log a traced server produced
    while answering real wire traffic against it."""
    root = tmp_path_factory.mktemp("slowlog")
    data_dir = str(root / "data")
    planner = dual_planner(N, SIZE, K)
    save_planner(planner, data_dir)
    queries = (queries_for(N, SIZE, "EXIST", K, count=6)
               + queries_for(N, SIZE, "ALL", K, count=6))
    log_path = str(root / "slow.jsonl")
    server = ServerThread(
        data_dir=data_dir, trace_sample=2, slowlog_out=log_path,
    ).start()
    try:
        client = server.client()
        try:
            for i, q in enumerate(queries * 2):
                assert client.request(query_to_request(
                    q, rid=i, trace={"id": f"rp-{i:04x}"}))["ok"]
        finally:
            client.close()
    finally:
        server.stop()
    return {"data_dir": data_dir, "log_path": log_path}


def test_worst_entry_replays_bit_identically(served_log):
    for by in ("latency", "pages"):
        entry = load_entry(served_log["log_path"], by=by)
        findings = replay_entry(entry, data_dir=served_log["data_dir"])
        assert findings == [], findings


def test_entry_records_engine_identity(served_log):
    entry = load_entry(served_log["log_path"])
    assert entry.engine["data_dir"] == served_log["data_dir"]
    assert entry.engine["slope_hash"]
    assert entry.engine["commit_seq"] >= 0
    assert entry.answer["digest"]


def test_replay_through_fuzzer_repro_dialect(served_log, tmp_path):
    entry = load_entry(served_log["log_path"])
    path = write_repro(
        entry_to_repro(entry, data_dir=served_log["data_dir"]),
        str(tmp_path), "case")
    assert replay_repro(path) == []
    # and load_entry accepts the repro file itself
    again = load_entry(path)
    assert again.trace_id == entry.trace_id


def test_answer_divergence_detected(served_log):
    entry = load_entry(served_log["log_path"])
    tampered = dataclasses.replace(
        entry, answer={"count": entry.answer["count"] + 1,
                       "digest": "deadbeefdeadbeef"})
    findings = replay_entry(tampered, data_dir=served_log["data_dir"])
    assert any(f["kind"] == "slowlog-answer-divergence" for f in findings)


def test_engine_mismatch_explained(served_log):
    entry = load_entry(served_log["log_path"])
    tampered = dataclasses.replace(
        entry, engine={**entry.engine, "slope_hash": "000000000000"})
    findings = replay_entry(tampered, data_dir=served_log["data_dir"])
    kinds = [f["kind"] for f in findings]
    assert "slowlog-engine-mismatch" in kinds


def test_accounting_divergence_detected(served_log):
    entry = load_entry(served_log["log_path"])
    tampered = dataclasses.replace(
        entry, accounting={**entry.accounting,
                           "candidates": 10_000_000})
    findings = replay_entry(tampered, data_dir=served_log["data_dir"])
    assert any(f["kind"] == "slowlog-accounting-divergence"
               for f in findings)


def test_unreplayable_entries_are_explained(served_log):
    entry = load_entry(served_log["log_path"])
    no_query = dataclasses.replace(entry, query=None)
    assert replay_entry(no_query)[0]["kind"] == "slowlog-not-replayable"
    nowhere = dataclasses.replace(entry, engine={})
    assert replay_entry(nowhere)[0]["kind"] == "slowlog-not-replayable"


def test_load_entry_ranking_and_bounds(served_log):
    entries = load_jsonl(served_log["log_path"])
    worst = load_entry(served_log["log_path"], by="pages")
    assert worst.pages == max(e.pages for e in entries)
    with pytest.raises(ValueError):
        load_entry(served_log["log_path"], index=len(entries) + 50)


def test_load_entry_rejects_other_json(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"kind": "fault"}))
    with pytest.raises(ValueError):
        load_entry(str(path))
