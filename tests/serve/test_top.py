"""The repro-top terminal view (pure parsing/rendering + the loop)."""

import json

from repro.serve.top import (
    bucket_delta,
    delta,
    histogram_buckets,
    parse_prom,
    quantile,
    render,
    run_top,
)

INF = float("inf")


class TestParseProm:
    def test_basic_lines(self):
        sample = parse_prom(
            "# HELP a help\n# TYPE a counter\na 3\nb{op=\"query\"} 2.5\n")
        assert sample == {"a": 3.0, 'b{op="query"}': 2.5}

    def test_exemplar_suffix_stripped(self):
        sample = parse_prom(
            'h_bucket{le="0.1"} 7 # {trace_id="abc-1"} 0.05\n')
        assert sample == {'h_bucket{le="0.1"}': 7.0}

    def test_quoted_label_values_with_braces_and_spaces(self):
        line = 'm{msg="a } b \\" c"} 4\n'
        assert parse_prom(line) == {'m{msg="a } b \\" c"}': 4.0}

    def test_garbage_skipped(self):
        assert parse_prom("nonsense\nx notanumber\n\n  \n") == {}


class TestHistogramQuantile:
    def _buckets(self):
        text = (
            'lat_bucket{op="query",le="0.001"} 50\n'
            'lat_bucket{op="query",le="0.01"} 90\n'
            'lat_bucket{op="query",le="+Inf"} 100\n'
            'lat_bucket{op="stats",le="0.001"} 5\n'
            'lat_bucket{op="stats",le="0.01"} 5\n'
            'lat_bucket{op="stats",le="+Inf"} 5\n'
        )
        return parse_prom(text)

    def test_histogram_buckets_filters_by_op(self):
        buckets = histogram_buckets(self._buckets(), "lat", op="query")
        assert buckets == {0.001: 50.0, 0.01: 90.0, INF: 100.0}

    def test_histogram_buckets_sums_without_op(self):
        buckets = histogram_buckets(self._buckets(), "lat")
        assert buckets == {0.001: 55.0, 0.01: 95.0, INF: 105.0}

    def test_quantile_picks_bucket_upper_bound(self):
        buckets = {0.001: 50.0, 0.01: 90.0, INF: 100.0}
        assert quantile(buckets, 0.50) == 0.001
        assert quantile(buckets, 0.90) == 0.01
        # the +Inf tail reports the last finite bound
        assert quantile(buckets, 0.999) == 0.01

    def test_quantile_empty_or_zero(self):
        assert quantile({}, 0.5) is None
        assert quantile({0.1: 0.0, INF: 0.0}, 0.5) is None

    def test_delta_and_bucket_delta(self):
        prev = parse_prom('c 10\nh_bucket{le="+Inf"} 5\n')
        cur = parse_prom('c 17\nh_bucket{le="+Inf"} 9\n')
        assert delta(cur, prev, "c") == 7.0
        assert delta(cur, None, "c") == 17.0
        assert bucket_delta(cur, prev, "h") == {INF: 4.0}


class TestRender:
    CUR = (
        'serve_requests{op="query"} 100\n'
        'serve_request_seconds_bucket{op="query",le="0.001"} 80\n'
        'serve_request_seconds_bucket{op="query",le="+Inf"} 100\n'
        "serve_inflight 2\n"
        "serve_queue_depth 1\n"
        "serve_traced_requests 100\n"
        "serve_request_pages_sum 400\n"
        "serve_request_pages_count 100\n"
        'serve_cost_ratio_bucket{le="1"} 60\n'
        'serve_cost_ratio_bucket{le="+Inf"} 100\n'
        "cost_model_violations 3\n"
        "serve_wal_bytes 4096\n"
        "serve_checkpoint_lag_bytes 0\n"
        "tune_swaps 1\n"
    )

    def test_first_frame_is_cumulative(self):
        frame = render(parse_prom(self.CUR), None, None, 1.0)
        assert "cumulative" in frame
        assert "qps    100.0" in frame
        assert "pages/query    4.00" in frame
        assert "violations 3" in frame
        assert "tune swaps 1" in frame

    def test_delta_frame_and_slowlog_line(self):
        prev = parse_prom(self.CUR)
        cur = dict(prev)
        cur['serve_requests{op="query"}'] += 50
        slowlog = {
            "recorded": 60,
            "entries": [{"trace_id": "t-9", "latency_s": 0.25,
                         "pages": 41.0}],
        }
        frame = render(cur, prev, slowlog, 2.0)
        assert "last 2.0s" in frame
        assert "qps     25.0" in frame
        assert "t-9" in frame and "250.00ms" in frame

    def test_tracing_off_hint(self):
        bare = parse_prom('serve_requests{op="query"} 5\n')
        assert "tracing off" in render(bare, None, None, 1.0)


class TestRunTop:
    def test_loop_with_injected_io(self):
        frames = []
        clock = iter(range(0, 100, 2)).__next__
        sleeps = []

        def fetch(path):
            if path == "/metrics":
                return 'serve_requests{op="query"} 10\n'
            return json.dumps({"recorded": 0, "entries": []})

        code = run_top(
            "h", 1, interval=0.5, iterations=3,
            fetch=fetch, out=frames.append,
            clock=clock, sleep=sleeps.append,
        )
        assert code == 0
        assert len(frames) == 3
        assert "cumulative" in frames[0]
        assert all("last" in f for f in frames[1:])
        assert sleeps == [0.5, 0.5]

    def test_slowlog_fetch_failure_tolerated(self):
        frames = []

        def fetch(path):
            if path == "/slowlog":
                raise OSError("no sidecar")
            return "serve_inflight 0\n"

        assert run_top("h", 1, iterations=1, fetch=fetch,
                       out=frames.append, sleep=lambda s: None) == 0
        assert frames
