"""Coalescing-buffer tests, including the starvation regression.

The bug the oldest-first cutoff prevents: if the flush deadline resets
on every arrival, a steady trickle spaced just under ``max_delay``
postpones the flush forever and the oldest query never executes. The
:class:`BatchBuffer` deadline belongs to the oldest pending item, so a
trickle can delay it by at most one ``max_delay``.
"""

import asyncio
import time

import pytest

from repro.serve.coalesce import BatchBuffer, Coalescer


class FakeClock:
    def __init__(self, at=0.0):
        self.at = at

    def __call__(self):
        return self.at


# ----------------------------------------------------------------------
# BatchBuffer (pure, fake clock)
# ----------------------------------------------------------------------
def test_deadline_is_oldest_arrival_plus_delay():
    clock = FakeClock()
    buf = BatchBuffer(max_batch=8, max_delay=0.010, clock=clock)
    buf.push("a")
    assert buf.deadline() == pytest.approx(0.010)
    clock.at = 0.004
    buf.push("b")
    # the deadline did NOT move: it still belongs to "a"
    assert buf.deadline() == pytest.approx(0.010)


def test_trickle_cannot_starve_the_oldest_request():
    """Regression: arrivals every 0.9×max_delay must not postpone the
    first item's flush past its own deadline."""
    clock = FakeClock()
    buf = BatchBuffer(max_batch=100, max_delay=0.010, clock=clock)
    buf.push(0)
    flushed_at = None
    for step in range(1, 50):
        clock.at = step * 0.009
        if buf.due():
            flushed_at = clock.at
            break
        buf.push(step)
    assert flushed_at is not None, "trickle starved the buffer"
    assert flushed_at <= 0.010 + 0.009  # one trickle step past deadline


def test_take_pops_oldest_first_and_keeps_stamps():
    clock = FakeClock()
    buf = BatchBuffer(max_batch=2, max_delay=0.010, clock=clock)
    for step in range(4):
        clock.at = step * 0.001
        buf.push(step)
    assert buf.full()
    assert buf.take() == [0, 1]
    # leftovers keep their original stamps: the next deadline belongs
    # to item 2 (enqueued at 0.002), not to "now"
    assert buf.deadline() == pytest.approx(0.002 + 0.010)
    assert buf.take() == [2, 3]
    assert buf.deadline() is None


def test_due_on_full_batch_ignores_clock():
    buf = BatchBuffer(max_batch=2, max_delay=9999.0, clock=FakeClock())
    buf.push("a")
    assert not buf.due()
    buf.push("b")
    assert buf.due()


def test_drain_empties_everything():
    buf = BatchBuffer(max_batch=2, max_delay=1.0, clock=FakeClock())
    for item in "abc":
        buf.push(item)
    assert buf.drain() == ["a", "b", "c"]
    assert len(buf) == 0


def test_rejects_nonsense_limits():
    with pytest.raises(ValueError):
        BatchBuffer(max_batch=0, max_delay=1.0)
    with pytest.raises(ValueError):
        BatchBuffer(max_batch=1, max_delay=-0.1)


# ----------------------------------------------------------------------
# Coalescer (asyncio)
# ----------------------------------------------------------------------
def test_concurrent_submits_share_one_batch():
    calls = []

    async def execute(queries):
        calls.append(list(queries))
        return [q * 10 for q in queries]

    async def scenario():
        coalescer = Coalescer(execute, max_batch=64, max_delay=0.01)
        coalescer.start()
        results = await asyncio.gather(
            *(coalescer.submit(n) for n in range(8)))
        await coalescer.close()
        return results

    assert asyncio.run(scenario()) == [n * 10 for n in range(8)]
    assert len(calls) == 1  # all eight coalesced
    assert sorted(calls[0]) == list(range(8))


def test_full_batch_flushes_before_deadline():
    calls = []

    async def execute(queries):
        calls.append(len(queries))
        return queries

    async def scenario():
        # max_delay is an hour: only the size trigger can flush.
        coalescer = Coalescer(execute, max_batch=4, max_delay=3600.0)
        coalescer.start()
        started = time.monotonic()
        await asyncio.gather(*(coalescer.submit(n) for n in range(4)))
        took = time.monotonic() - started
        await asyncio.wait_for(coalescer.close(), timeout=5)
        return took

    assert asyncio.run(scenario()) < 5.0
    assert calls == [4]


def test_executor_failure_reaches_every_waiter_in_batch_only():
    async def execute(queries):
        if "boom" in queries:
            raise RuntimeError("executor exploded")
        return queries

    async def scenario():
        coalescer = Coalescer(execute, max_batch=16, max_delay=0.005)
        coalescer.start()
        bad = await asyncio.gather(
            coalescer.submit("boom"), coalescer.submit("collateral"),
            return_exceptions=True)
        good = await coalescer.submit("fine")  # next batch unaffected
        await coalescer.close()
        return bad, good

    bad, good = asyncio.run(scenario())
    assert all(isinstance(r, RuntimeError) for r in bad)
    assert good == "fine"


def test_close_flushes_pending_and_rejects_new_work():
    async def execute(queries):
        return queries

    async def scenario():
        coalescer = Coalescer(execute, max_batch=64, max_delay=3600.0)
        coalescer.start()
        pending = asyncio.get_running_loop().create_task(
            coalescer.submit("parked"))
        await asyncio.sleep(0)  # let the submit park
        await asyncio.wait_for(coalescer.close(), timeout=5)
        result = await pending
        try:
            await coalescer.submit("late")
        except RuntimeError:
            return result, "rejected"
        return result, "accepted"

    assert asyncio.run(scenario()) == ("parked", "rejected")


def test_live_trickle_does_not_starve_first_submit():
    """End-to-end starvation regression on the real event loop: keep a
    trickle arriving faster than max_delay and require the first
    submission to resolve on its own deadline, not the trickle's end."""
    executed_at = {}

    async def execute(queries):
        for q in queries:
            executed_at.setdefault(q, time.monotonic())
        return queries

    async def scenario():
        coalescer = Coalescer(execute, max_batch=1000, max_delay=0.05)
        coalescer.start()
        started = time.monotonic()
        first = asyncio.get_running_loop().create_task(
            coalescer.submit("first"))
        trickle = []
        for n in range(10):  # 10 × 30ms = 300ms of trickle
            await asyncio.sleep(0.03)
            trickle.append(asyncio.get_running_loop().create_task(
                coalescer.submit(f"drip-{n}")))
        await first
        await asyncio.gather(*trickle)
        await coalescer.close()
        return executed_at["first"] - started

    # Deadline is 50ms; generous CI allowance, but far below the 300ms
    # a deadline-resetting buffer would take.
    assert asyncio.run(scenario()) < 0.25
