"""End-to-end request tracing through the serve path.

Covers the tentpole wiring: trace ids minted/adopted per request,
OpenMetrics exemplars on the page/cost histograms, the slow-query log
endpoint, span trees on sampled requests, sharded fan-out propagation,
and — crucially — that the tracing-off path is bit-identical to the
pre-tracing wire shape.
"""

import asyncio
import json
import urllib.request

import pytest

from repro.bench.harness import dual_planner, queries_for
from repro.serve.client import ReproClient
from repro.core.slope_set import SlopeSet
from repro.serve.protocol import query_to_request
from repro.serve.testing import ServerThread
from repro.shard.sharded import ShardedDualIndex
from repro.workloads.generator import make_relation

N, SIZE, K = 300, "small", 3


@pytest.fixture(scope="module")
def planner():
    return dual_planner(N, SIZE, K)


@pytest.fixture(scope="module")
def queries():
    return (queries_for(N, SIZE, "EXIST", K, count=6)
            + queries_for(N, SIZE, "ALL", K, count=6))


def _fetch(port, path):
    return urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10).read().decode()


def test_every_request_gets_a_trace_id(planner, queries):
    with ServerThread(engine=planner, trace_sample=1) as server:
        client = server.client()
        try:
            minted = client.request(query_to_request(queries[0], rid=1))
            assert minted["ok"]
            assert minted["trace_id"]
            adopted = client.request(query_to_request(
                queries[1], rid=2, trace={"id": "client-abc"}))
            assert adopted["trace_id"] == "client-abc"
            # a malformed trace field is a BAD_REQUEST, not silence
            envelope = query_to_request(queries[2], rid=3)
            envelope["trace"] = {"id": ""}
            rejected = client.request(envelope)
            assert not rejected["ok"]
            assert rejected["error"]["code"] == "BAD_REQUEST"
        finally:
            client.close()


def test_traced_answers_match_untraced(planner, queries):
    with ServerThread(engine=planner) as server:
        client = server.client()
        try:
            plain = [client.request(query_to_request(q, rid=i))
                     for i, q in enumerate(queries)]
        finally:
            client.close()
    with ServerThread(engine=planner, trace_sample=2) as server:
        client = server.client()
        try:
            traced = [client.request(query_to_request(q, rid=i))
                      for i, q in enumerate(queries)]
        finally:
            client.close()
    for off, on in zip(plain, traced):
        assert off["ids"] == on["ids"]
        assert off["technique"] == on["technique"]
        # tracing only *adds* fields to the response
        assert set(off) <= set(on)
        assert set(on) - set(off) <= {"trace_id", "pages"}


def test_tracing_off_wire_shape_unchanged(planner, queries):
    with ServerThread(engine=planner) as server:
        client = server.client()
        try:
            response = client.request(query_to_request(queries[0], rid=9))
        finally:
            client.close()
    assert "trace_id" not in response
    assert "pages" not in response
    # a client-sent trace field is valid protocol but ignored
    with ServerThread(engine=planner) as server:
        client = server.client()
        try:
            response = client.request(query_to_request(
                queries[0], rid=9, trace={"id": "t", "sampled": True}))
        finally:
            client.close()
    assert response["ok"]
    assert "trace_id" not in response


def test_exemplars_and_slowlog_endpoint(planner, queries):
    with ServerThread(
        engine=planner, trace_sample=2, metrics_port=0,
    ) as server:
        client = server.client()
        try:
            for i, q in enumerate(queries * 2):
                assert client.request(query_to_request(
                    q, rid=i, trace={"id": f"e2e-{i:04x}"}))["ok"]
        finally:
            client.close()
        mport = server.server.metrics_port
        prom = _fetch(mport, "/metrics")
        assert "serve_traced_requests" in prom
        assert "serve_request_pages_bucket" in prom
        assert "serve_cost_ratio" in prom
        exemplars = [line for line in prom.splitlines()
                     if ' # {trace_id="e2e-' in line]
        assert exemplars, "no per-request exemplars in /metrics"
        slow = json.loads(_fetch(mport, "/slowlog"))
        assert slow["recorded"] >= len(queries)
        assert slow["entries"], "slow-query log is empty"
        worst = slow["entries"][0]
        assert worst["trace_id"].startswith("e2e-")
        assert worst["query"]["query_type"] in ("EXIST", "ALL")
        assert worst["engine"]["slope_hash"]
        assert worst["answer"]["digest"]
        sampled = [e for e in slow["entries"] if e["span_tree"]]
        assert sampled, "no sampled request carried a span tree"
        assert sampled[0]["span_tree"]["name"] == "serve.batch"


def test_slowlog_endpoint_when_tracing_off(planner):
    with ServerThread(engine=planner, metrics_port=0) as server:
        slow = json.loads(_fetch(server.server.metrics_port, "/slowlog"))
    assert slow == {"capacity": 0, "recorded": 0, "dropped": 0,
                    "entries": []}


def test_sharded_engine_propagates_trace(queries):
    engine = ShardedDualIndex.build(
        make_relation(N, SIZE, seed=5), SlopeSet.uniform_angles(K),
        shards=2)
    try:
        expected = [r.ids for r in engine.query_batch(queries).results]
        with ServerThread(engine=engine, trace_sample=1) as server:
            client = server.client()
            try:
                responses = [
                    client.request(query_to_request(
                        q, rid=i, trace={"id": f"sh-{i}", "sampled": True}))
                    for i, q in enumerate(queries)
                ]
            finally:
                client.close()
            answered = [sorted(r["ids"]) for r in responses]
            assert answered == [sorted(ids) for ids in expected]
            assert [r["trace_id"] for r in responses] == [
                f"sh-{i}" for i in range(len(queries))]
            assert all("pages" in r for r in responses)
            worst = server.server.slowlog.worst()
            assert worst is not None and worst.span_tree is not None
    finally:
        engine.close()


def test_clients_attach_trace_context(planner, queries):
    """Both client classes can mint-and-attach a trace context that the
    server adopts end to end (the ``query(..., trace=...)`` kwarg)."""
    with ServerThread(engine=planner, trace_sample=1) as server:
        sync = server.client()
        try:
            response = sync.query(queries[0], trace={"id": "sync-1"})
            assert response["trace_id"] == "sync-1"
            untraced = sync.query(queries[0])
            assert untraced["trace_id"] != "sync-1"  # server-minted
        finally:
            sync.close()

        async def scenario(port):
            client = await ReproClient.connect("127.0.0.1", port)
            try:
                adopted = await client.query(
                    queries[1], trace={"id": "async-1", "sampled": True})
                minted = await client.query(queries[1])
            finally:
                await client.close()
            return adopted, minted

        adopted, minted = asyncio.run(scenario(server.port))
        assert adopted["trace_id"] == "async-1"
        assert minted["trace_id"] != "async-1"
        assert adopted["ids"] == minted["ids"]


def test_shutdown_writes_slowlog_and_trace_artifacts(
    planner, queries, tmp_path,
):
    slow_path = tmp_path / "slow.jsonl"
    trace_path = tmp_path / "trace.json"
    server = ServerThread(
        engine=planner, trace_sample=1,
        slowlog_out=str(slow_path), trace_out=str(trace_path),
    ).start()
    try:
        client = server.client()
        try:
            for i, q in enumerate(queries):
                assert client.request(query_to_request(q, rid=i))["ok"]
        finally:
            client.close()
    finally:
        server.stop()
    lines = [json.loads(line) for line in
             slow_path.read_text().splitlines()]
    assert lines and all(entry["trace_id"] for entry in lines)
    tree = json.loads(trace_path.read_text())
    assert tree["name"] == "serve.batch"
