"""Fault injection for the serving path: dead clients, slow-loris,
reload races, and WAL auto-checkpoints crashing mid-fold."""

import asyncio
import random
import socket
import time

import pytest

from repro.bench.harness import queries_for
from repro.core.planner import DualIndexPlanner
from repro.core.slope_set import SlopeSet
from repro.obs.metrics import get_registry
from repro.serve.client import ReproClient
from repro.serve.protocol import decode_frames
from repro.serve.server import ServeConfig
from repro.serve.testing import ServerThread
from repro.storage.checkpoint import save_planner, wal_size
from repro.storage.filepager import FileDisk
from repro.storage.pager import Pager
from repro.verify.differential import tuple_to_json
from repro.verify.faults import CrashPoint, arm_crash
from repro.verify.workload import bounded_tuple
from repro.workloads.generator import make_relation

N, SIZE, K = 200, "small", 3
SLOPES = SlopeSet.uniform_angles(K)


def _queries():
    return (queries_for(N, SIZE, "EXIST", K, count=4)
            + queries_for(N, SIZE, "ALL", K, count=4))


def _dynamic_planner(data_dir: str) -> DualIndexPlanner:
    """A dynamic planner living on a WAL-mode FileDisk in ``data_dir``,
    saved so the directory reopens."""
    disk = FileDisk(data_dir, durability="wal")
    planner = DualIndexPlanner.build(
        make_relation(N, SIZE, seed=5), SLOPES,
        pager=Pager(disk=disk), dynamic=True)
    save_planner(planner, data_dir)
    return planner


def _insert_request(tid: int, rng: random.Random) -> dict:
    return {"op": "insert", "tid": tid,
            "tuple": tuple_to_json(bounded_tuple(rng))["atoms"]}


def test_client_disconnect_mid_response_leaves_server_healthy():
    planner = DualIndexPlanner.build(make_relation(N, SIZE, seed=5), SLOPES)
    queries = _queries()
    disconnects = get_registry().counter(
        "serve_disconnects", "Connections that ended mid-frame")
    before = disconnects.value
    with ServerThread(engine=planner) as server:
        for _ in range(3):
            # fire a query and slam the connection without reading
            sock = socket.create_connection(
                ("127.0.0.1", server.port), timeout=10)
            from repro.serve.protocol import encode_frame
            sock.sendall(encode_frame(
                {"id": 1, "op": "query", "type": "EXIST", "slope": 1.0,
                 "intercept": 0.0, "theta": ">="}))
            sock.close()
        # server survives: a polite client still gets exact answers
        client = server.client()
        try:
            expected = [r.ids for r in planner.query_batch(queries).results]
            assert [client.query_ids(q) for q in queries] == expected
        finally:
            client.close()
    assert disconnects.value >= before  # best-effort: races with close


def test_slow_loris_partial_frame_hits_read_timeout():
    planner = DualIndexPlanner.build(make_relation(N, SIZE, seed=5), SLOPES)
    config = ServeConfig(read_timeout=0.3)
    with ServerThread(engine=planner, config=config) as server:
        from repro.serve.protocol import encode_frame
        frame = encode_frame({"id": 1, "op": "ping"})
        with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(frame[:6])  # mid-header, then stall
            started = time.monotonic()
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
            elapsed = time.monotonic() - started
        frames = decode_frames(raw)
        assert frames[0]["ok"] is False
        assert frames[0]["error"]["code"] == "BAD_REQUEST"
        assert "partial frame" in frames[0]["error"]["message"]
        assert elapsed < 10.0  # dropped on the timeout, not held forever
        # idle-but-clean connections are NOT subject to the timeout
        client = server.client()
        try:
            time.sleep(0.5)  # longer than read_timeout, on a boundary
            assert client.ping()["pong"] is True
        finally:
            client.close()


def test_reload_races_inflight_queries(tmp_path):
    """Drain correctness: reloads interleaved with a stream of
    concurrent queries must never produce a wrong or failed answer."""
    data_dir = str(tmp_path / "engine")
    planner = _dynamic_planner(data_dir)
    queries = _queries()
    expected = [sorted(planner.query(q).ids) for q in queries]
    planner.index.pager.disk.close()

    async def scenario(port):
        client = await ReproClient.connect("127.0.0.1", port)

        async def query_stream():
            out = []
            for _ in range(5):
                answers = await asyncio.gather(
                    *(client.query_ids(q) for q in queries))
                out.append([sorted(a) for a in answers])
            return out

        async def reload_stream():
            for _ in range(4):
                response = await client.request({"op": "reload"})
                assert response["ok"], response
                await asyncio.sleep(0)

        rounds, _ = await asyncio.gather(query_stream(), reload_stream())
        await client.close()
        return rounds

    config = ServeConfig(data_dir=data_dir, max_delay=0.001)
    with ServerThread(config=config) as server:
        rounds = asyncio.run(scenario(server.port))
        reloads = server.server._c_reloads  # noqa: SLF001 - test probe
        assert reloads.value >= 4
    for answers in rounds:
        assert answers == expected


def test_auto_checkpoint_bounds_wal_under_write_load(tmp_path):
    """Sustained inserts must trip the WAL threshold repeatedly, keep
    the log bounded, and never corrupt what a concurrent reader sees."""
    data_dir = str(tmp_path / "engine")
    planner = _dynamic_planner(data_dir)
    queries = _queries()
    planner.index.pager.disk.close()

    # mirror planner: same base relation, same inserts, in memory
    mirror = DualIndexPlanner.build(
        make_relation(N, SIZE, seed=5), SLOPES, dynamic=True)

    threshold = 64 * 1024
    config = ServeConfig(data_dir=data_dir, wal_checkpoint_bytes=threshold)
    checkpoints = get_registry().counter(
        "serve_autocheckpoints", "Automatic WAL-threshold checkpoints")
    before = checkpoints.value
    rng = random.Random(11)
    mirror_rng = random.Random(11)
    wal_readings = []
    with ServerThread(config=config) as server:
        client = server.client()
        try:
            for step in range(60):
                tid = 10_000 + step
                response = client.request(_insert_request(tid, rng))
                assert response["ok"], response
                mirror.insert(tid, bounded_tuple(mirror_rng))
                if step % 10 == 9:
                    # concurrent reader: answers must match the mirror
                    served = [client.query_ids(q) for q in queries]
                    local = [mirror.query(q).ids for q in queries]
                    assert served == local
                stats = client.request({"op": "stats"})
                wal_readings.append(stats["wal_bytes"])
            response = client.request({"op": "commit"})
            assert response["ok"]
        finally:
            client.close()
    fired = checkpoints.value - before
    assert fired >= 1, "write load never tripped the WAL threshold"
    # bounded: the WAL never kept growing unchecked (one batch of
    # slack past the threshold is the trigger granularity)
    assert max(wal_readings) < 4 * threshold
    assert min(wal_readings) < threshold  # it really was reset

    # durability: the reopened directory serves the mirror's answers
    reopened = DualIndexPlanner.open(data_dir)
    assert [reopened.query(q).ids for q in queries] == \
        [mirror.query(q).ids for q in queries]
    reopened.index.pager.disk.close()


def test_crash_mid_auto_checkpoint_recovers(tmp_path):
    """Kill the engine mid-auto-checkpoint (CrashPoint, as the recovery
    fuzzer does) and prove the reopened directory lost nothing that was
    acknowledged."""
    data_dir = str(tmp_path / "engine")
    planner = _dynamic_planner(data_dir)
    queries = _queries()
    planner.index.pager.disk.close()

    mirror = DualIndexPlanner.build(
        make_relation(N, SIZE, seed=5), SLOPES, dynamic=True)

    config = ServeConfig(data_dir=data_dir, wal_checkpoint_bytes=32 * 1024)
    rng = random.Random(13)
    mirror_rng = random.Random(13)
    crashed = False
    with ServerThread(config=config) as server:
        # arm the crash on the live engine's disk: the next checkpoint
        # dies after 0 page writes, before the header flip
        disk = server.server.engine.index.pager.disk
        arm_crash(disk, CrashPoint(point="checkpoint", at=0))
        client = server.client()
        try:
            for step in range(200):
                tid = 20_000 + step
                response = client.request(
                    _insert_request(tid, rng))
                mirror.insert(tid, bounded_tuple(mirror_rng))
                if not response["ok"]:
                    # the auto-checkpoint fired and hit the armed crash
                    assert response["error"]["code"] == "INTERNAL"
                    assert "FaultInjected" in response["error"]["message"]
                    crashed = True
                    break
            assert crashed, "write load never triggered the checkpoint"
        finally:
            client.close()
    # The crashing checkpoint's commit + catalog preceded the fold, so
    # every insert sent — including the one whose response was the
    # error — must survive recovery.
    reopened = DualIndexPlanner.open(data_dir)
    assert wal_size(reopened) >= 0
    assert [reopened.query(q).ids for q in queries] == \
        [mirror.query(q).ids for q in queries]
    reopened.index.pager.disk.close()


def test_fresh_engine_after_crash_still_checkpoints(tmp_path):
    """After a crash + reopen, the WAL-threshold trigger keeps working
    (the niggle this layer closes: the log may not grow forever)."""
    data_dir = str(tmp_path / "engine")
    planner = _dynamic_planner(data_dir)
    planner.index.pager.disk.close()

    config = ServeConfig(data_dir=data_dir, wal_checkpoint_bytes=32 * 1024)
    rng = random.Random(17)
    with ServerThread(config=config) as server:
        client = server.client()
        try:
            for step in range(60):
                response = client.request(
                    _insert_request(30_000 + step, rng))
                assert response["ok"], response
            stats = client.request({"op": "stats"})
            assert stats["wal_bytes"] < 4 * 32 * 1024
        finally:
            client.close()


@pytest.mark.fuzz
def test_served_engine_under_differential_fuzz_rounds():
    """A few dedicated fuzz rounds with the served engine registered
    (nightly soak; run_checks covers it on every PR-time round too)."""
    from repro.verify.differential import FuzzConfig, run_fuzz

    report = run_fuzz(
        FuzzConfig(seed=1999, budget_seconds=10.0, max_rounds=8))
    assert report.ok, report.disagreements
