"""End-to-end server tests over real localhost sockets."""

import asyncio
import json
import socket
import urllib.request

import pytest

from repro.bench.harness import dual_planner, queries_for
from repro.core.query import HalfPlaneQuery
from repro.core.slope_set import SlopeSet
from repro.errors import OverloadedError
from repro.serve.client import ReproClient
from repro.serve.server import ServeConfig
from repro.serve.testing import ServerThread, served_batch_answers
from repro.shard.sharded import ShardedDualIndex
from repro.storage.checkpoint import save_planner
from repro.workloads.generator import make_relation

N, SIZE, K = 300, "small", 3


@pytest.fixture(scope="module")
def planner():
    return dual_planner(N, SIZE, K)


@pytest.fixture(scope="module")
def queries():
    return (queries_for(N, SIZE, "EXIST", K, count=6)
            + queries_for(N, SIZE, "ALL", K, count=6))


def test_served_answers_match_local_engine(planner, queries):
    expected = [r.ids for r in planner.query_batch(queries).results]
    assert served_batch_answers(planner, queries) == expected


def test_served_sharded_engine(queries):
    engine = ShardedDualIndex.build(
        make_relation(N, SIZE, seed=5), SlopeSet.uniform_angles(K),
        shards=2)
    expected = [r.ids for r in engine.query_batch(queries).results]
    assert served_batch_answers(engine, queries) == expected
    engine.close()


def test_pipelined_requests_interleave_and_match_ids(planner, queries):
    """Many concurrent requests on one connection: every response must
    come back under its own request's id (the loadgen pattern)."""
    expected = [r.ids for r in planner.query_batch(queries).results]

    async def scenario(port):
        client = await ReproClient.connect("127.0.0.1", port)
        answered = await asyncio.gather(
            *(client.query_ids(q) for q in queries * 3))
        await client.close()
        return answered

    with ServerThread(engine=planner) as server:
        answered = asyncio.run(scenario(server.port))
    assert answered == expected * 3


def test_bad_requests_get_typed_errors_and_connection_survives(planner):
    with ServerThread(engine=planner) as server:
        client = server.client()
        try:
            response = client.request({"op": "query", "type": "BOGUS",
                                       "slope": 1, "intercept": 0,
                                       "theta": ">="})
            assert response["ok"] is False
            assert response["error"]["code"] == "BAD_REQUEST"
            assert "BOGUS" in response["error"]["message"]
            # same connection still serves good requests afterwards
            assert client.ping()["pong"] is True
        finally:
            client.close()


def test_garbage_prefix_closes_connection_with_error(planner):
    with ServerThread(engine=planner) as server:
        with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(b"GET /metrics HTTP/1.1\r\n\r\n")
            raw = sock.recv(65536)
        # an error frame, then EOF
        from repro.serve.protocol import decode_frames
        frames = decode_frames(raw)
        assert frames[0]["ok"] is False
        assert frames[0]["error"]["code"] == "BAD_REQUEST"


def test_overload_backpressure_is_typed_not_silent(planner):
    """With a queue depth of 1 and a long coalescing delay, pipelined
    requests past the first get OVERLOADED frames immediately."""
    config = ServeConfig(max_queue_depth=1, max_delay=0.2, max_batch=512)

    async def scenario(port):
        client = await ReproClient.connect("127.0.0.1", port)
        q = HalfPlaneQuery("EXIST", 1.0, 0.0, ">=")
        outcomes = await asyncio.gather(
            *(client.request(
                {"op": "query", "type": q.query_type, "slope": 1.0,
                 "intercept": 0.0, "theta": ">="})
              for _ in range(4)))
        await client.close()
        return outcomes

    with ServerThread(engine=planner, config=config) as server:
        outcomes = asyncio.run(scenario(server.port))
    ok = [r for r in outcomes if r.get("ok")]
    overloaded = [
        r for r in outcomes
        if not r.get("ok") and r["error"]["code"] == "OVERLOADED"]
    assert len(ok) >= 1
    assert len(overloaded) >= 1
    assert len(ok) + len(overloaded) == 4


def test_sync_client_raises_typed_overload(planner):
    config = ServeConfig(max_queue_depth=0)
    with ServerThread(engine=planner, config=config) as server:
        client = server.client()
        try:
            with pytest.raises(OverloadedError):
                client.query(HalfPlaneQuery("EXIST", 1.0, 0.0, ">="))
        finally:
            client.close()


def test_reload_swaps_engine_from_data_dir(tmp_path, queries):
    """Save v1, serve it, overwrite the directory with v2 (more
    tuples), reload: answers switch to v2 without a restart."""
    v1 = dual_planner(N, SIZE, K)
    data_dir = str(tmp_path / "engine")
    save_planner(v1, data_dir)
    expected_v1 = [r.ids for r in v1.query_batch(queries).results]

    config = ServeConfig(data_dir=data_dir)
    with ServerThread(config=config) as server:
        client = server.client()
        try:
            assert [client.query_ids(q) for q in queries] == expected_v1
            # new index generation lands on disk (fresh directory swap
            # is the documented rebuild procedure; here we grow in
            # place via a bigger build saved over a clean dir)
            import shutil
            shutil.rmtree(data_dir)
            from repro.core.planner import DualIndexPlanner
            v2 = DualIndexPlanner.build(
                make_relation(2 * N, SIZE, seed=6),
                SlopeSet.uniform_angles(K))
            save_planner(v2, data_dir)
            expected_v2 = [r.ids for r in v2.query_batch(queries).results]
            assert expected_v2 != expected_v1  # the swap is observable
            response = client.request({"op": "reload"})
            assert response["ok"] and response["reloaded"]
            assert [client.query_ids(q) for q in queries] == expected_v2
        finally:
            client.close()


def test_stats_op_and_metrics_endpoint(planner):
    config = ServeConfig(metrics_port=0)
    with ServerThread(engine=planner, config=config) as server:
        client = server.client()
        try:
            client.query_ids(HalfPlaneQuery("EXIST", 1.0, 0.0, ">="))
            stats = client.request({"op": "stats"})
            assert stats["ok"]
            assert any(key.startswith("serve_requests")
                       for key in stats["metrics"]["counters"])
        finally:
            client.close()
        mport = server.server.metrics_port
        body = urllib.request.urlopen(
            f"http://127.0.0.1:{mport}/metrics", timeout=10).read()
        text = body.decode()
        assert "# TYPE serve_requests counter" in text
        assert 'serve_requests{op="query"}' in text
        assert "serve_batch_size" in text
        health = urllib.request.urlopen(
            f"http://127.0.0.1:{mport}/healthz", timeout=10)
        health_body = json.loads(health.read())
        assert health_body["ok"] is True
        assert health_body["wal_bytes"] == 0  # in-memory engine
        assert health_body["checkpoint_lag_bytes"] == 0
        assert "serve_wal_bytes" in text
        assert "serve_checkpoint_lag_bytes" in text
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{mport}/nope", timeout=10)


def test_shutdown_op_acknowledges_then_drains(planner):
    server = ServerThread(engine=planner).start()
    client = server.client()
    try:
        response = client.request({"op": "shutdown"})
        assert response["ok"] and response["stopping"]
    finally:
        client.close()
        server.stop()


def test_mutations_rejected_on_sharded_engine(queries):
    engine = ShardedDualIndex.build(
        make_relation(N, SIZE, seed=5), SlopeSet.uniform_angles(K),
        shards=2)
    with ServerThread(engine=engine) as server:
        client = server.client()
        try:
            response = client.request({"op": "delete", "tid": 1})
            assert response["ok"] is False
            assert response["error"]["code"] == "UNSUPPORTED"
        finally:
            client.close()
    engine.close()


def test_response_json_is_wire_safe(planner):
    """Every response must survive a JSON round-trip (ids are plain
    ints, not numpy scalars)."""
    with ServerThread(engine=planner) as server:
        client = server.client()
        try:
            response = client.query(HalfPlaneQuery("EXIST", 1.0, 0.0, ">="))
            rebuilt = json.loads(json.dumps(response))
            assert rebuilt == response
            assert all(isinstance(i, int) for i in response["ids"])
        finally:
            client.close()
