"""Online retune over real sockets: the ``tune`` op, the hot-swap, and
``--auto-tune`` — including in-flight queries during the swap."""

import os
import threading
import time

import pytest

from repro.core import DualIndexPlanner, HalfPlaneQuery, SlopeSet
from repro.serve.server import ServeConfig
from repro.serve.testing import ServerThread
from repro.storage.checkpoint import open_planner, save_planner
from repro.workloads import make_relation

#: Exact hot slopes (the canned-application-query model): repeated
#: verbatim, so a learned S can adopt them and hit the exact path.
HOT_A = 2.2344969487553255
HOT_B = -1.398382589287699

N, SIZE, K = 300, "small", 3


def _hot_queries():
    return [
        HalfPlaneQuery("EXIST", HOT_A, 0.0, ">="),
        HalfPlaneQuery("ALL", HOT_A, 4.0, "<="),
        HalfPlaneQuery("EXIST", HOT_B, 1.5, "<="),
        HalfPlaneQuery("ALL", HOT_B, -2.0, ">="),
    ]


@pytest.fixture()
def planner():
    return DualIndexPlanner.build(
        make_relation(N, SIZE, seed=31), SlopeSet.uniform_angles(K)
    )


async def _slopes(server):
    return list(server._current_slopes())


def _pump_evidence(client, queries, rounds):
    answered = []
    for _ in range(rounds):
        for i, q in enumerate(queries):
            answered.append((i, client.query_ids(q)))
    return answered


def test_tune_op_reports_without_swapping(planner):
    queries = _hot_queries()
    before = list(planner.index.slopes)
    with ServerThread(engine=planner, tune_min_evidence=8) as server:
        client = server.client()
        try:
            # Pre-evidence: the op answers, but declines to decide.
            early = client.request({"op": "tune"})
            assert early["ok"] is True
            assert early["tuned"] is False
            assert early["reason"] == "evidence"

            _pump_evidence(client, queries, rounds=3)
            report = client.request({"op": "tune"})
        finally:
            client.close()
        assert report["ok"] is True
        assert report["tuned"] is False  # no apply: report only
        assert report["decision"]["worthwhile"] is True
        assert set(report["decision"]["learned_slopes"]) == {HOT_A, HOT_B}
        assert server.call(_slopes) == before


def test_hot_swap_keeps_in_flight_queries_whole(planner):
    """The fault-injection case the tentpole promises: a client keeps
    firing while ``tune --apply`` rebuilds and swaps. Every answer must
    match the pre-swap truth — none dropped, none half-swapped."""
    queries = _hot_queries()
    expected = [planner.query(q).ids for q in queries]

    with ServerThread(engine=planner, tune_min_evidence=8) as server:
        evidence_client = server.client()
        try:
            _pump_evidence(evidence_client, queries, rounds=4)
        finally:
            evidence_client.close()

        stop = threading.Event()
        answered = []
        errors = []

        def _pump():
            client = server.client()
            try:
                while not stop.is_set():
                    for i, q in enumerate(queries):
                        answered.append((i, client.query_ids(q)))
            except Exception as exc:  # surface in the main thread
                errors.append(exc)
            finally:
                client.close()

        pump = threading.Thread(target=_pump)
        pump.start()
        try:
            report = server.call(lambda s: s.tune(apply=True))
            # Let the pump cross the swapped engine for a while too.
            time.sleep(0.3)
        finally:
            stop.set()
            pump.join(timeout=30)

        assert not errors
        assert report["tuned"] is True
        assert {HOT_A, HOT_B} <= set(server.call(_slopes))
        assert len(answered) > 0
        for i, ids in answered:
            assert ids == expected[i]

        # The wire path still answers identically after the swap.
        client = server.client()
        try:
            assert [client.query_ids(q) for q in queries] == expected
        finally:
            client.close()


def test_durable_swap_rehomes_data_dir(planner, tmp_path):
    """With a durable engine the tuned index lands in a sibling
    data-dir, the server re-points at it, and ``commit`` keeps working
    against the new home; the original dir stays intact (rollback)."""
    queries = _hot_queries()
    expected = [planner.query(q).ids for q in queries]
    src = str(tmp_path / "engine")
    save_planner(planner, src)
    before_files = sorted(os.listdir(src))

    config = ServeConfig(port=0, data_dir=src, tune_min_evidence=8)
    with ServerThread(config=config) as server:
        client = server.client()
        try:
            _pump_evidence(client, queries, rounds=4)
            report = client.request({"op": "tune", "apply": True})
            assert report["ok"] is True and report["tuned"] is True

            async def _home(s):
                return s.config.data_dir

            new_home = server.call(_home)
            assert new_home == f"{src}-tuned1"
            assert os.path.isdir(new_home)
            # Same answers from the swapped, reopened engine...
            assert [client.query_ids(q) for q in queries] == expected
            # ...and commit follows the new home (live WAL there).
            assert client.request({"op": "commit"})["ok"] is True
        finally:
            client.close()

    # Rollback path: the original data-dir was never touched.
    assert sorted(os.listdir(src)) == before_files
    reopened = open_planner(src)
    try:
        assert [reopened.query(q).ids for q in queries] == expected
    finally:
        reopened.index.pager.disk.close()


def test_auto_tune_retunes_in_the_background(planner):
    queries = _hot_queries()
    expected = [planner.query(q).ids for q in queries]
    with ServerThread(
        engine=planner, auto_tune=True,
        tune_interval=0.15, tune_min_evidence=8,
    ) as server:
        client = server.client()
        try:
            _pump_evidence(client, queries, rounds=4)
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if {HOT_A, HOT_B} <= set(server.call(_slopes)):
                    break
                time.sleep(0.1)
            else:
                pytest.fail("auto-tune never swapped the slope set")
            assert [client.query_ids(q) for q in queries] == expected
        finally:
            client.close()
