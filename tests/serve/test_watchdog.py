"""The cost watchdog as a live SLO.

Acceptance-criteria coverage for the predicted-vs-actual page ratio:
once the online model calibrates, the ``serve_cost_ratio`` histogram's
p50 stays within the documented budget (``--cost-budget``, default
4.0) on both the uniform and the skewed workload families, and a
budget breach bumps ``cost_model_violations`` and force-keeps a
``reason="cost_model"`` slow-query-log entry.
"""

import urllib.request

import pytest

from repro.bench.harness import dual_planner, relation
from repro.serve.server import ServeConfig
from repro.serve.testing import ServerThread
from repro.serve.top import bucket_delta, parse_prom, quantile
from repro.workloads.skew import skewed_queries, uniform_queries

N, SIZE, K = 400, "small", 3
#: Past PageCostModel's default ``min_samples`` (32), so every query
#: after the warm-up is priced out-of-sample.
CALIBRATION = 40
MEASURED = 60
FAMILIES = {"uniform": uniform_queries, "skewed": skewed_queries}


@pytest.fixture(scope="module")
def planner():
    return dual_planner(N, SIZE, K)


def _scrape(server):
    port = server.server.metrics_port
    return urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=10).read().decode()


def _drive(server, queries, prefix):
    client = server.client()
    try:
        for i, q in enumerate(queries):
            response = client.query(q, trace={"id": f"{prefix}-{i:04x}"})
            assert response["trace_id"] == f"{prefix}-{i:04x}"
    finally:
        client.close()


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_cost_ratio_p50_within_documented_bound(planner, family):
    rel = relation(N, SIZE)
    make = FAMILIES[family]
    warmup = make(rel, CALIBRATION, seed=11)
    measured = make(rel, MEASURED, seed=12)
    with ServerThread(
        engine=planner, trace_sample=4, metrics_port=0,
    ) as server:
        _drive(server, warmup, f"{family}-warm")
        before = parse_prom(_scrape(server))
        _drive(server, measured, family)
        after = parse_prom(_scrape(server))
    buckets = bucket_delta(after, before, "serve_cost_ratio")
    observed = max(buckets.values(), default=0.0)
    assert observed >= MEASURED, (
        "model never calibrated: no post-warmup ratio observations")
    p50 = quantile(buckets, 0.5)
    assert p50 is not None
    assert p50 <= ServeConfig().cost_budget, (
        f"{family} p50 ratio {p50} breaches the documented budget")


def test_budget_breach_bumps_counter_and_slowlog(planner):
    # A warm buffer pool answers these small-relation queries with ~0
    # page accesses, so every honest ratio sits near zero — an
    # impossible (negative) budget is the deterministic way to drive
    # the breach path: any calibrated ratio violates it.
    rel = relation(N, SIZE)
    queries = uniform_queries(rel, CALIBRATION + 12, seed=13)
    with ServerThread(
        engine=planner, trace_sample=1, metrics_port=0,
        cost_budget=-1.0,
    ) as server:
        before = parse_prom(_scrape(server)).get(
            "cost_model_violations", 0.0)
        _drive(server, queries, "breach")
        after = parse_prom(_scrape(server)).get(
            "cost_model_violations", 0.0)
        kept = server.server.slowlog.entries(by="pages")
    assert after > before, "no violation despite an impossible budget"
    breaches = [e for e in kept if e.reason == "cost_model"]
    assert breaches, "no cost_model-reason entry survived in the log"
    for entry in breaches:
        assert entry.ratio is not None and entry.ratio > -1.0
        assert entry.predicted_pages is not None
