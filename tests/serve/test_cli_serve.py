"""CLI surface of the serving layer: loadgen and serve-bench."""

import json

import pytest

from repro.bench.harness import dual_planner
from repro.cli import main
from repro.serve.testing import ServerThread

N, SIZE, K = 300, "small", 3


@pytest.fixture(scope="module")
def served():
    planner = dual_planner(N, SIZE, K)
    with ServerThread(engine=planner) as server:
        yield server


def test_loadgen_smoke_workload(served, tmp_path, capsys):
    out = tmp_path / "report.json"
    code = main([
        "loadgen", "--port", str(served.port), "--workload", "smoke",
        "--mode", "closed", "--requests", "40", "--concurrency", "4",
        "--out", str(out),
    ])
    assert code == 0
    printed = json.loads(capsys.readouterr().out)
    assert printed["completed"] == 40
    assert printed["errors"] == 0
    assert json.loads(out.read_text()) == printed


def test_loadgen_open_loop_from_query_file(served, tmp_path, capsys):
    queries = tmp_path / "queries.txt"
    queries.write_text(
        "EXIST 1.0 0.0 GE\n"
        "ALL -0.5 2.0 LE\n"
    )
    code = main([
        "loadgen", "--port", str(served.port), "--queries", str(queries),
        "--mode", "open", "--rate", "400", "--requests", "30",
    ])
    assert code == 0
    printed = json.loads(capsys.readouterr().out)
    assert printed["mode"] == "open"
    assert printed["completed"] + printed["overloaded"] == 30


def test_loadgen_connection_refused_is_an_error(capsys):
    with pytest.raises(OSError):
        main([
            "loadgen", "--port", "1", "--workload", "smoke",
            "--requests", "4",
        ])


def test_serve_bench_smoke(tmp_path, capsys):
    from repro.bench import serve_bench

    out = tmp_path / "BENCH_serve.json"
    code = serve_bench.main([
        "--out", str(out), "--requests", "80", "--concurrency", "4",
        "--p99-budget-ms", "60000",
    ])
    assert code == 0
    artifact = json.loads(out.read_text())
    assert artifact["mismatched_answers"] == 0
    assert artifact["counters"]["serve_qps_closed"] > 0
    assert artifact["report"]["errors"] == 0


def test_serve_bench_p99_budget_enforced(tmp_path, capsys):
    from repro.bench import serve_bench

    out = tmp_path / "BENCH_serve.json"
    code = serve_bench.main([
        "--out", str(out), "--requests", "40", "--concurrency", "4",
        "--p99-budget-ms", "0.000001",
    ])
    assert code == 1
    assert "budget" in capsys.readouterr().err.lower()
