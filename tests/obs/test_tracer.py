"""Request-scoped trace contexts (repro.obs.tracer)."""

import pickle

import pytest

from repro.obs import tracer
from repro.obs.tracer import (
    MAX_TRACE_ID,
    RequestTracer,
    TraceContext,
    from_payload,
    request_context,
    valid_trace_id,
)


class TestTraceContext:
    def test_payload_round_trip(self):
        ctx = TraceContext("abc-123", sampled=True)
        again = from_payload(ctx.payload())
        assert again == ctx

    def test_frozen(self):
        ctx = TraceContext("x")
        with pytest.raises(AttributeError):
            ctx.trace_id = "y"

    def test_payload_is_picklable(self):
        # The fork fan-out ships payloads across process boundaries.
        ctx = TraceContext("abc", sampled=True)
        assert pickle.loads(pickle.dumps(ctx.payload())) == ctx.payload()


class TestValidTraceId:
    @pytest.mark.parametrize("good", ["a", "abc-123", "x" * MAX_TRACE_ID])
    def test_accepts(self, good):
        assert valid_trace_id(good)

    @pytest.mark.parametrize(
        "bad",
        ["", "x" * (MAX_TRACE_ID + 1), "has\nnewline", "tab\there",
         123, None, b"bytes"],
    )
    def test_rejects(self, bad):
        assert not valid_trace_id(bad)


class TestFromPayload:
    def test_none_and_non_dict(self):
        assert from_payload(None) is None
        assert from_payload("abc") is None
        assert from_payload(["id"]) is None

    def test_invalid_id_is_untraced_not_error(self):
        assert from_payload({"id": ""}) is None
        assert from_payload({"id": 7}) is None
        assert from_payload({}) is None

    def test_sampled_defaults_false(self):
        ctx = from_payload({"id": "t1"})
        assert ctx == TraceContext("t1", sampled=False)


class TestRequestContextHook:
    def test_no_context_by_default(self):
        assert tracer.context() is None
        assert tracer.payload() is None

    def test_install_and_restore(self):
        ctx = TraceContext("t1")
        with request_context(ctx):
            assert tracer.context() is ctx
            assert tracer.payload() == {"id": "t1", "sampled": False}
        assert tracer.context() is None

    def test_nesting_restores_outer(self):
        outer, inner = TraceContext("outer"), TraceContext("inner")
        with request_context(outer):
            with request_context(inner):
                assert tracer.context() is inner
            assert tracer.context() is outer
        assert tracer.context() is None

    def test_none_is_a_noop_block(self):
        outer = TraceContext("outer")
        with request_context(outer):
            with request_context(None):
                assert tracer.context() is outer

    def test_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with request_context(TraceContext("boom")):
                raise RuntimeError("x")
        assert tracer.context() is None


class TestRequestTracer:
    def test_minted_ids_are_unique_and_prefixed(self):
        rt = RequestTracer(prefix="p")
        ids = {rt.new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(i.startswith("p-") for i in ids)

    def test_adopts_valid_client_id(self):
        rt = RequestTracer(prefix="srv")
        ctx = rt.make_context({"id": "client-7"})
        assert ctx.trace_id == "client-7"

    def test_mints_for_missing_or_invalid_wire_trace(self):
        rt = RequestTracer(prefix="srv")
        assert rt.make_context(None).trace_id.startswith("srv-")
        assert rt.make_context({"id": ""}).trace_id.startswith("srv-")

    def test_sampling_cadence(self):
        rt = RequestTracer(sample_every=3, prefix="p")
        sampled = [rt.make_context().sampled for _ in range(9)]
        assert sampled == [True, False, False] * 3

    def test_sample_every_zero_never_samples(self):
        rt = RequestTracer(sample_every=0, prefix="p")
        assert not any(rt.make_context().sampled for _ in range(20))

    def test_client_can_force_but_not_suppress_sampling(self):
        rt = RequestTracer(sample_every=2, prefix="p")
        # request 0 is due for sampling; a client cannot turn that off
        first = rt.make_context({"id": "c0", "sampled": False})
        assert first.sampled
        # request 1 is off-cadence; the client can still opt in
        second = rt.make_context({"id": "c1", "sampled": True})
        assert second.sampled
        # request 2 is due again (cadence unaffected by the forcing)
        assert rt.make_context({"id": "c2"}).sampled

    def test_negative_sample_every_rejected(self):
        with pytest.raises(ValueError):
            RequestTracer(sample_every=-1)
