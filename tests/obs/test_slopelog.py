"""Slope-log sink: reservoir bounds, zero-overhead disabled hook,
and drain/merge across shards and serve workers."""

import math
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DualIndexPlanner, SlopeSet
from repro.obs import slopelog
from repro.obs.slopelog import N_BINS, SlopeLog, SlopeLogSnapshot
from repro.shard import ShardedDualIndex
from repro.workloads import make_relation, make_queries

_slope = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# reservoir properties
# ----------------------------------------------------------------------
@given(slopes=st.lists(_slope, max_size=200))
@settings(max_examples=60, deadline=None)
def test_lossless_up_to_capacity_and_exact_histogram(slopes):
    """While count <= capacity the reservoir holds *every* record (in
    order); beyond, it holds exactly ``capacity`` of them — and the
    angle histogram stays exact regardless."""
    capacity = 32
    log = SlopeLog(capacity=capacity, seed=7)
    for s in slopes:
        log.record(s)
    snap = log.snapshot()
    assert snap.count == len(slopes)
    if len(slopes) <= capacity:
        assert snap.lossless
        assert snap.samples == slopes
    else:
        assert not snap.lossless
        assert len(snap.samples) == capacity
        # Reservoir contents are a subset of what was recorded.
        recorded = sorted(slopes)
        for s in snap.samples:
            assert s in recorded
    assert sum(snap.bins) == len(slopes)
    for s in slopes:
        assert snap.bins[slopelog.bin_of(s)] >= 1


@given(
    left=st.lists(_slope, max_size=80),
    right=st.lists(_slope, max_size=80),
)
@settings(max_examples=60, deadline=None)
def test_merge_lossless_within_bounds(left, right):
    """Merging two drained snapshots is lossless while the pooled
    reservoirs fit, and always preserves count/bins/by_type exactly."""
    capacity = 64
    a, b = SlopeLog(capacity=capacity), SlopeLog(capacity=capacity)
    a.record_many(left, "EXIST")
    b.record_many(right, "ALL")
    merged = a.drain().merge(b.drain())
    assert merged.count == len(left) + len(right)
    assert sum(merged.bins) == merged.count
    if len(left) + len(right) <= capacity:
        assert merged.lossless
        assert sorted(merged.samples) == sorted(left + right)
    else:
        assert len(merged.samples) <= capacity
    assert merged.by_type.get("EXIST", 0) == len(left)
    assert merged.by_type.get("ALL", 0) == len(right)
    # Drain really reset the sources.
    assert a.count == 0 and b.count == 0


def test_merge_capacity_mismatch_rejected():
    with pytest.raises(ValueError):
        SlopeLogSnapshot(capacity=8).merge(SlopeLogSnapshot(capacity=16))


def test_non_finite_slopes_ignored():
    log = SlopeLog(capacity=8)
    log.record(math.inf)
    log.record(-math.inf)
    log.record(math.nan)
    assert log.count == 0


def test_snapshot_roundtrips_dict_and_pickle():
    log = SlopeLog(capacity=4, seed=3)
    log.record_many([0.5, -2.0, 1.0, 7.0, -0.25], "ALL")
    snap = log.snapshot()
    assert SlopeLogSnapshot.from_dict(snap.to_dict()) == snap
    assert pickle.loads(pickle.dumps(snap)) == snap
    assert len(snap.bins) == N_BINS


# ----------------------------------------------------------------------
# the disabled hook is a no-op; engines record once per logical query
# ----------------------------------------------------------------------
def _answers(planner, queries):
    return [planner.query(q).ids for q in queries]


def test_disabled_hook_is_bit_identical_noop():
    """With no log installed, queries answer identically and nothing is
    recorded anywhere — observability must never change behaviour."""
    relation = make_relation(80, "small", seed=11)
    planner = DualIndexPlanner.build(relation, SlopeSet.uniform_angles(3))
    queries = make_queries(relation, 6, "EXIST", seed=2) + \
        make_queries(relation, 6, "ALL", seed=3)
    assert slopelog.active() is None
    baseline = _answers(planner, queries)
    log = SlopeLog(capacity=64)
    with slopelog.logging_slopes(log):
        logged = _answers(planner, queries)
    after = _answers(planner, queries)
    assert baseline == logged == after
    assert log.count == len(queries)
    # Pages too: logging is observation, not participation.
    r_off = planner.query(queries[0])
    with slopelog.logging_slopes(SlopeLog()):
        r_on = planner.query(queries[0])
    assert r_off.page_accesses == r_on.page_accesses


def test_sharded_engine_records_each_logical_query_once():
    """The facade records one entry per logical query — shard-internal
    planners are suppressed, so thread and process fan-out would log
    identically instead of once per shard."""
    relation = make_relation(120, "small", seed=5)
    queries = make_queries(relation, 5, "EXIST", seed=9)
    sharded = ShardedDualIndex.build(
        relation, SlopeSet.uniform_angles(3), shards=2
    )
    try:
        for planner in sharded.planners:
            assert planner.slope_logging is False
        log = SlopeLog(capacity=64)
        with slopelog.logging_slopes(log):
            for q in queries:
                sharded.query(q)
            sharded.query_batch(queries)
        assert log.count == 2 * len(queries)
    finally:
        sharded.close()


def test_serve_worker_drains_merge_like_registry_snapshots():
    """Per-worker logs drain to snapshots that merge associatively —
    the same discipline RegistrySnapshot follows across the fleet."""
    workers = []
    for w in range(3):
        log = SlopeLog(capacity=128, seed=w)
        log.record_many([0.1 * w + 0.05 * i for i in range(10)], "EXIST")
        workers.append(log.drain())
    left = workers[0].merge(workers[1]).merge(workers[2])
    right_tail = workers[1].merge(workers[2])
    assert left.count == 30
    assert left.lossless
    assert sum(left.bins) == 30
    assert left.by_type == {"EXIST": 30}
    assert right_tail.count == 20
    # A central log absorbs a drained snapshot without losing its own.
    central = SlopeLog(capacity=128)
    central.record(2.5, "ALL")
    central.absorb(right_tail)
    assert central.count == 21
