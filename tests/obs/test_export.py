"""Chrome trace export and JSONL event-ring tests (schema round-trips)."""

import json

import pytest

from repro.obs import QueryTrace, tracing
from repro.obs.events import (
    EventLog,
    log_trace,
    parse_jsonl,
    validate_event,
)
from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.storage import Pager


def make_pager(pages: int = 4) -> tuple[Pager, list[int]]:
    pager = Pager()
    pids = [pager.allocate() for _ in range(pages)]
    for pid in pids:
        pager.write(pid, bytes([pid % 251]) * pager.page_size)
    pager.cool_down()
    pager.stats.reset()
    pager.buffer.hits = pager.buffer.misses = 0
    return pager, pids


def traced_workload():
    """A small real query trace (planner end-to-end)."""
    from repro.core import DualIndexPlanner, SlopeSet
    from repro.workloads import make_relation

    planner = DualIndexPlanner.build(
        make_relation(60, "small", seed=11), SlopeSet.uniform_angles(3)
    )
    trace = QueryTrace(pager=planner.index.pager)
    with tracing(trace):
        planner.exist(0.5, 2.0)
    return trace


class TestChromeTrace:
    def test_export_validates_against_schema(self):
        doc = chrome_trace(traced_workload())
        assert validate_chrome_trace(doc) == []
        # and survives a JSON round-trip intact
        assert validate_chrome_trace(json.loads(json.dumps(doc))) == []

    def test_one_complete_event_per_span(self):
        trace = traced_workload()
        root = trace.close()
        doc = chrome_trace(root)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == sum(1 for _ in root.walk())
        names = {e["name"] for e in complete}
        assert "query" in names and "fetch" in names

    def test_args_carry_attribution(self):
        root = traced_workload().close()
        doc = chrome_trace(root)
        by_name = {e["name"]: e for e in doc["traceEvents"]
                   if e["ph"] == "X"}
        total = by_name[root.name]["args"]["pages_inclusive"]
        assert total == root.inclusive_pages()
        exclusive_sum = sum(
            e["args"]["pages_exclusive"] for e in doc["traceEvents"]
            if e["ph"] == "X"
        )
        assert exclusive_sum == total

    def test_multi_pager_spans_get_separate_lanes(self):
        pager_a, pids_a = make_pager()
        pager_b, pids_b = make_pager()
        trace = QueryTrace(pager=pager_a, name="fan")
        with trace.span("query", pager=pager_a):
            pager_a.read(pids_a[0])
            with trace.span("query.shard", pager=pager_b):
                pager_b.read(pids_b[0])
        doc = chrome_trace(trace.close())
        tids = {e["name"]: e["tid"] for e in doc["traceEvents"]
                if e["ph"] == "X"}
        assert tids["query"] != tids["query.shard"]

    def test_validator_catches_malformed_events(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        bad_phase = {"traceEvents": [{"ph": "Q"}]}
        assert any("phase" in p for p in validate_chrome_trace(bad_phase))
        missing = {"traceEvents": [{"ph": "X", "name": "a"}]}
        assert validate_chrome_trace(missing) != []
        negative = {"traceEvents": [{
            "name": "a", "cat": "a", "ph": "X", "ts": -1.0, "dur": 0.0,
            "pid": 1, "tid": 0, "args": {},
        }]}
        assert any("negative" in p for p in validate_chrome_trace(negative))

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        doc = write_chrome_trace(traced_workload(), str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(doc))
        assert validate_chrome_trace(on_disk) == []


class TestEventLog:
    def test_emit_and_envelope(self):
        log = EventLog(capacity=8)
        ev = log.emit("span", "fetch", pages=3)
        assert validate_event(ev) == []
        assert ev["seq"] == 0 and ev["data"] == {"pages": 3}
        assert len(log) == 1 and log.dropped == 0

    def test_ring_is_bounded_and_tracks_drops(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit("tick", f"e{i}")
        assert len(log) == 3
        assert log.dropped == 7
        assert [e["name"] for e in log] == ["e7", "e8", "e9"]
        # seq keeps counting monotonically across drops
        assert [e["seq"] for e in log] == [7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("span", "query", pages=5, meta={"type": "EXIST"})
        log.emit("span", "fetch", pages=2)
        text = log.to_jsonl()
        # every line is strict JSON
        lines = text.splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)
        events = parse_jsonl(text)
        assert events == list(log)
        path = tmp_path / "events.jsonl"
        assert log.write_jsonl(str(path)) == 2
        assert parse_jsonl(path.read_text()) == list(log)

    def test_parse_jsonl_rejects_bad_events(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_jsonl('{"kind": "span"}')
        with pytest.raises(ValueError):
            parse_jsonl('{"seq": "x", "kind": "k", "name": "n", "data": {}}')

    def test_log_trace_one_event_per_span(self):
        trace = traced_workload()
        root = trace.close()
        log = EventLog()
        count = log_trace(log, root)
        assert count == sum(1 for _ in root.walk()) == len(log)
        total = next(iter(log))["data"]["pages_inclusive"]
        assert total == root.inclusive_pages()
        # the dump re-validates end to end
        assert parse_jsonl(log.to_jsonl()) == list(log)
