"""The slow-query log (repro.obs.slowlog)."""

import pytest

from repro.obs.slowlog import (
    SlowLogEntry,
    SlowQueryLog,
    answer_digest,
    load_jsonl,
    slope_set_hash,
)


def entry(trace_id, latency_ms=1.0, pages=0.0, reason="latency", **kw):
    return SlowLogEntry(
        trace_id, "query", latency_s=latency_ms / 1e3, pages=pages,
        reason=reason, **kw)


class TestHashes:
    def test_slope_set_hash_order_insensitive(self):
        assert slope_set_hash([1.0, -2.0, 0.5]) == slope_set_hash(
            [0.5, 1.0, -2.0])

    def test_slope_set_hash_value_sensitive(self):
        assert slope_set_hash([1.0]) != slope_set_hash([1.0000001])

    def test_answer_digest_order_insensitive_and_stable(self):
        assert answer_digest([3, 1, 2]) == answer_digest([1, 2, 3])
        assert answer_digest([1, 2]) != answer_digest([1, 2, 3])
        assert len(answer_digest([])) == 16


class TestSlowQueryLog:
    def test_keeps_worst_by_latency(self):
        log = SlowQueryLog(capacity=2)
        for ms in (1, 9, 5, 7):
            log.record(entry(f"t{ms}", latency_ms=ms, pages=ms))
        assert [e.trace_id for e in log.entries()] == ["t9", "t7"]

    def test_union_of_both_rankings(self):
        # t-pages is cheap by latency but tops the page ranking: kept.
        log = SlowQueryLog(capacity=2)
        log.record(entry("t-pages", latency_ms=0.1, pages=500))
        for ms in (9, 7, 5):
            log.record(entry(f"t{ms}", latency_ms=ms, pages=1))
        kept = {e.trace_id for e in log.entries()}
        assert "t-pages" in kept
        assert kept == {"t9", "t7", "t-pages"}
        assert log.worst(by="pages").trace_id == "t-pages"
        assert log.worst(by="latency").trace_id == "t9"

    def test_violations_always_kept(self):
        log = SlowQueryLog(capacity=2)
        log.record(entry("v1", latency_ms=0.01, pages=0,
                         reason="cost_model"))
        for ms in range(10, 20):
            log.record(entry(f"t{ms}", latency_ms=ms, pages=ms))
        assert "v1" in {e.trace_id for e in log.entries()}

    def test_record_reports_kept(self):
        log = SlowQueryLog(capacity=1)
        assert log.record(entry("big", latency_ms=10, pages=10))
        assert not log.record(entry("small", latency_ms=1, pages=1))
        assert log.recorded == 2
        assert log.dropped == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)

    def test_to_json_shape(self):
        log = SlowQueryLog(capacity=4)
        log.record(entry("a", latency_ms=2))
        log.record(entry("b", latency_ms=5))
        doc = log.to_json()
        assert doc["capacity"] == 4
        assert doc["recorded"] == 2
        assert [e["trace_id"] for e in doc["entries"]] == ["b", "a"]

    def test_jsonl_round_trip(self, tmp_path):
        log = SlowQueryLog(capacity=4)
        full = entry(
            "full", latency_ms=3, pages=12.5, technique="vector",
            query={"query_type": "EXIST", "slope": [0.5],
                   "intercept": [1.0], "theta": ["GE"]},
            accounting={"candidates": 4, "refinement_pages": 2},
            predicted_pages=10.0, ratio=1.25,
            engine={"version": 3, "slope_hash": "abc"},
            answer={"count": 2, "digest": answer_digest([1, 2])},
            span_tree={"name": "serve.batch", "children": []},
        )
        log.record(full)
        log.record(entry("plain", latency_ms=1))
        path = tmp_path / "slow.jsonl"
        assert log.write_jsonl(str(path)) == 2
        back = load_jsonl(str(path))
        assert [e.trace_id for e in back] == ["full", "plain"]
        assert back[0].to_json() == full.to_json()
