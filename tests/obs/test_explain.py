"""Explain-report tests: checked attribution, shard rows, cache outcomes."""

import pytest

from repro.core import DualIndexPlanner, SlopeSet
from repro.core.query import ALL, EXIST, HalfPlaneQuery
from repro.obs.explain import (
    ExplainInvariantError,
    _check_attribution,
    explain,
    render_explain,
    traced_answer,
)
from repro.obs.trace import Span
from repro.workloads import make_relation

QUERIES = [
    HalfPlaneQuery(EXIST, 0.5, 2.0, ">="),
    HalfPlaneQuery(ALL, 0.5, -1.0, "<="),
]


@pytest.fixture(scope="module")
def planner():
    return DualIndexPlanner.build(
        make_relation(80, "small", seed=11), SlopeSet.uniform_angles(3)
    )


@pytest.fixture(scope="module")
def sharded():
    from repro.shard import ShardedDualIndex

    engine = ShardedDualIndex.build(
        make_relation(80, "small", seed=11), SlopeSet.uniform_angles(3),
        shards=4,
    )
    yield engine
    engine.close()


class TestPathColumn:
    """Index rows must say which hot path (columnar/scalar) served them."""

    def exact_queries(self):
        slope = SlopeSet.uniform_angles(3)[0]
        return [
            HalfPlaneQuery(EXIST, slope, 1.0, ">="),
            HalfPlaneQuery(ALL, slope, -1.0, "<="),
        ]

    def test_columnar_engine_reports_columnar(self):
        planner = DualIndexPlanner.build(
            make_relation(80, "small", seed=11),
            SlopeSet.uniform_angles(3), columnar=True,
        )
        report = explain(planner, self.exact_queries())
        assert report.index_rows[planner.index.name]["path"] == "columnar"

    def test_scalar_engine_reports_scalar(self):
        planner = DualIndexPlanner.build(
            make_relation(80, "small", seed=11),
            SlopeSet.uniform_angles(3), columnar=False,
        )
        report = explain(planner, self.exact_queries())
        assert report.index_rows[planner.index.name]["path"] == "scalar"

    def test_render_includes_path(self):
        planner = DualIndexPlanner.build(
            make_relation(80, "small", seed=11),
            SlopeSet.uniform_angles(3), columnar=True,
        )
        text = render_explain(explain(planner, self.exact_queries()))
        assert "path=columnar" in text

    def test_vectorized_batch_attribution_identity(self):
        # The Σ-exclusive == inclusive identity must hold on the
        # vectorized batch path too (explain() raises on violation; the
        # assertions pin the checked totals).
        planner = DualIndexPlanner.build(
            make_relation(120, "small", seed=11),
            SlopeSet.uniform_angles(3), columnar=True,
        )
        from repro.bench.vector_bench import fan_batch

        report = explain(planner, fan_batch(3, width=2), batch=True)
        assert sum(report.phase_pages.values()) == report.total_pages
        assert report.total_pages > 0


class TestExplain:
    def test_attribution_sums_to_inclusive(self, planner):
        report = explain(planner, QUERIES)
        assert sum(report.phase_pages.values()) == report.total_pages
        assert report.total_pages > 0

    def test_answers_match_untraced(self, planner):
        report = explain(planner, QUERIES)
        for query, res in zip(QUERIES, report.results):
            assert res.ids == planner.query(query).ids

    def test_index_rows_single_engine(self, planner):
        report = explain(planner, QUERIES)
        assert set(report.index_rows) == {planner.index.name}
        row = report.index_rows[planner.index.name]
        assert row["queries"] == len(QUERIES)
        assert row["pages"] == report.total_pages

    def test_descent_heights_recorded(self, planner):
        report = explain(planner, QUERIES)
        assert report.descent_heights
        assert all(h >= 1 for h in report.descent_heights.values())

    def test_sharded_rows_and_invariant(self, sharded):
        report = explain(sharded, QUERIES)
        assert set(report.index_rows) == {f"shard{i}" for i in range(4)}
        assert sum(report.phase_pages.values()) == report.total_pages
        per_shard = sum(
            row["pages"] for row in report.index_rows.values()
        )
        assert per_shard == report.total_pages

    def test_batch_mode_reports_cache(self, planner):
        repeated = QUERIES + [QUERIES[0]]
        report = explain(planner, repeated, batch=True)
        assert report.cache_hits >= 1
        assert len(report.results) == len(repeated)
        assert sum(report.phase_pages.values()) == report.total_pages

    def test_render_contains_checked_total(self, planner):
        text = render_explain(explain(planner, QUERIES))
        assert "(checked)" in text
        assert "phase attribution" in text
        assert "b+-tree descents" in text

    def test_traced_answer_equals_plain(self, planner):
        for query in QUERIES:
            assert traced_answer(planner, query).ids == \
                planner.query(query).ids

    def test_invariant_violation_raises(self):
        # hand-build a broken tree: parent claims fewer pages than a
        # same-token child (impossible for real snapshots)
        root = Span("q")
        root.pager_token = 1
        root.io.logical_reads = 1
        child = Span("fetch")
        child.pager_token = 2  # different token -> added to inclusive
        child.io.logical_reads = 3
        root.children.append(child)
        # corrupt phase map directly
        with pytest.raises(ExplainInvariantError):
            _check_attribution(root, {"q": 1})
