"""Metrics registry tests: counters, gauges, histograms, export."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, get_registry


class TestCounter:
    def test_inc(self):
        c = Counter("ops")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        c = Counter("ops")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_family_needs_labels(self):
        c = Counter("pages", labelnames=("phase",))
        with pytest.raises(ValueError):
            c.inc()
        c.labels(phase="sweep").inc(3)
        c.labels(phase="fetch").inc(1)
        c.labels(phase="sweep").inc(2)
        series = dict(c.series())
        assert series["pages{phase=sweep}"].value == 5
        assert series["pages{phase=fetch}"].value == 1

    def test_wrong_labelnames_rejected(self):
        c = Counter("pages", labelnames=("phase",))
        with pytest.raises(ValueError):
            c.labels(stage="sweep")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("frames")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12


class TestHistogram:
    def test_observe_and_summary(self):
        h = Histogram("latency", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 3.0, 50.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["mean"] == pytest.approx(55.5 / 4)
        assert s["min"] == 0.5 and s["max"] == 50.0
        assert s["buckets"] == {"le=1": 1, "le=10": 2, "le=+inf": 1}

    def test_labeled_children_share_buckets(self):
        h = Histogram("latency", labelnames=("structure",), buckets=(5.0,))
        h.labels(structure="dual").observe(1.0)
        h.labels(structure="dual").observe(9.0)
        series = dict(h.series())
        assert series["latency{structure=dual}"].summary()["buckets"] == {
            "le=5": 1, "le=+inf": 1,
        }

    def test_empty_summary(self):
        s = Histogram("latency").summary()
        assert s["count"] == 0
        assert s["min"] is None and s["max"] is None


class TestRegistry:
    def test_registration_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("ops", "help")
        b = reg.counter("ops")
        assert a is b

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("ops")
        with pytest.raises(ValueError):
            reg.gauge("ops")
        with pytest.raises(ValueError):
            reg.histogram("ops")

    def test_collect_sections_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z_ops").inc()
        reg.counter("a_ops").inc(2)
        reg.gauge("frames").set(7)
        reg.histogram("ms").observe(1.0)
        snap = reg.collect()
        assert list(snap["counters"]) == ["a_ops", "z_ops"]
        assert snap["gauges"] == {"frames": 7.0}
        assert snap["histograms"]["ms"]["count"] == 1

    def test_export_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("pages", labelnames=("phase",)).labels(phase="sweep").inc(4)
        doc = json.loads(reg.export_json())
        assert doc["counters"] == {"pages{phase=sweep}": 4.0}

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc()
        reg.reset()
        assert reg.collect()["counters"] == {}

    def test_default_registry_is_shared(self):
        assert get_registry() is get_registry()
