"""Metrics registry tests: counters, gauges, histograms, export."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, get_registry


class TestCounter:
    def test_inc(self):
        c = Counter("ops")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        c = Counter("ops")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_family_needs_labels(self):
        c = Counter("pages", labelnames=("phase",))
        with pytest.raises(ValueError):
            c.inc()
        c.labels(phase="sweep").inc(3)
        c.labels(phase="fetch").inc(1)
        c.labels(phase="sweep").inc(2)
        series = dict(c.series())
        assert series["pages{phase=sweep}"].value == 5
        assert series["pages{phase=fetch}"].value == 1

    def test_wrong_labelnames_rejected(self):
        c = Counter("pages", labelnames=("phase",))
        with pytest.raises(ValueError):
            c.labels(stage="sweep")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("frames")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12


class TestHistogram:
    def test_observe_and_summary(self):
        h = Histogram("latency", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 3.0, 50.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["mean"] == pytest.approx(55.5 / 4)
        assert s["min"] == 0.5 and s["max"] == 50.0
        assert s["buckets"] == {"le=1": 1, "le=10": 2, "le=+inf": 1}

    def test_labeled_children_share_buckets(self):
        h = Histogram("latency", labelnames=("structure",), buckets=(5.0,))
        h.labels(structure="dual").observe(1.0)
        h.labels(structure="dual").observe(9.0)
        series = dict(h.series())
        assert series["latency{structure=dual}"].summary()["buckets"] == {
            "le=5": 1, "le=+inf": 1,
        }

    def test_empty_summary(self):
        s = Histogram("latency").summary()
        assert s["count"] == 0
        assert s["min"] is None and s["max"] is None


class TestRegistry:
    def test_registration_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("ops", "help")
        b = reg.counter("ops")
        assert a is b

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("ops")
        with pytest.raises(ValueError):
            reg.gauge("ops")
        with pytest.raises(ValueError):
            reg.histogram("ops")

    def test_collect_sections_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z_ops").inc()
        reg.counter("a_ops").inc(2)
        reg.gauge("frames").set(7)
        reg.histogram("ms").observe(1.0)
        snap = reg.collect()
        assert list(snap["counters"]) == ["a_ops", "z_ops"]
        assert snap["gauges"] == {"frames": 7.0}
        assert snap["histograms"]["ms"]["count"] == 1

    def test_export_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("pages", labelnames=("phase",)).labels(phase="sweep").inc(4)
        doc = json.loads(reg.export_json())
        assert doc["counters"] == {"pages{phase=sweep}": 4.0}

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc()
        reg.reset()
        assert reg.collect()["counters"] == {}

    def test_default_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestStrictRegistration:
    """S1: re-registration with mismatched shape must raise, not alias."""

    def test_labelnames_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("pages", labelnames=("phase",))
        with pytest.raises(ValueError, match="labelnames"):
            reg.counter("pages", labelnames=("structure",))
        with pytest.raises(ValueError, match="labelnames"):
            reg.counter("pages")  # unlabeled vs labeled is also a mismatch

    def test_gauge_labelnames_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.gauge("frames")
        with pytest.raises(ValueError, match="labelnames"):
            reg.gauge("frames", labelnames=("pool",))

    def test_histogram_labelnames_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("ms", labelnames=("phase",))
        with pytest.raises(ValueError, match="labelnames"):
            reg.histogram("ms")

    def test_histogram_buckets_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("ms", buckets=(1.0, 5.0))
        with pytest.raises(ValueError, match="buckets"):
            reg.histogram("ms", buckets=(1.0, 10.0))

    def test_identical_reregistration_still_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("pages", labelnames=("phase",))
        assert reg.counter("pages", labelnames=("phase",)) is a
        h = reg.histogram("ms", buckets=(1.0, 5.0))
        assert reg.histogram("ms", buckets=(5.0, 1.0)) is h  # order-free


class TestHistogramNullMinMax:
    """S2: min/max are null (never inf) for strict JSON consumers."""

    def test_unobserved_summary_is_strict_json(self):
        reg = MetricsRegistry()
        reg.histogram("ms")  # zero observations
        doc = json.loads(reg.export_json())  # allow_nan=False underneath
        assert doc["histograms"]["ms"]["min"] is None
        assert doc["histograms"]["ms"]["max"] is None

    def test_unobserved_labeled_child_is_strict_json(self):
        reg = MetricsRegistry()
        reg.histogram("ms", labelnames=("phase",)).labels(phase="sweep")
        doc = json.loads(json.dumps(reg.collect(), allow_nan=False))
        assert doc["histograms"]["ms{phase=sweep}"]["min"] is None

    def test_observed_min_max(self):
        h = Histogram("ms")
        h.observe(3.0)
        h.observe(1.0)
        assert (h.min, h.max) == (1.0, 3.0)
        doc = json.loads(json.dumps(h.summary(), allow_nan=False))
        assert (doc["min"], doc["max"]) == (1.0, 3.0)


class TestRegistrySnapshot:
    def make_source(self):
        reg = MetricsRegistry()
        reg.counter("ops", "help text").inc(3)
        reg.counter("pages", labelnames=("phase",)).labels(phase="sweep").inc(5)
        reg.gauge("frames").set(2)
        h = reg.histogram("ms", buckets=(1.0, 5.0))
        h.observe(0.5)
        h.observe(7.0)
        return reg

    def test_absorb_accumulates(self):
        snap = self.make_source().snapshot()
        target = MetricsRegistry()
        target.absorb(snap)
        target.absorb(snap)
        c = target.collect()
        assert c["counters"]["ops"] == 6.0
        assert c["counters"]["pages{phase=sweep}"] == 10.0
        assert c["gauges"]["frames"] == 4.0  # gauges sum (disjoint fleets)
        assert c["histograms"]["ms"]["count"] == 4
        assert c["histograms"]["ms"]["min"] == 0.5
        assert c["histograms"]["ms"]["max"] == 7.0

    def test_merge_is_strict_and_additive(self):
        a = self.make_source().snapshot()
        b = self.make_source().snapshot()
        merged = a.merge(b)
        assert merged is a
        target = MetricsRegistry()
        target.absorb(merged)
        assert target.collect()["counters"]["ops"] == 6.0
        other = MetricsRegistry()
        other.counter("ops", labelnames=("x",)).labels(x="1").inc()
        with pytest.raises(ValueError, match="labelnames"):
            a.merge(other.snapshot())

    def test_with_labels_prefixes_and_extends(self):
        snap = self.make_source().snapshot().with_labels(
            prefix="shard_", shard="2"
        )
        target = MetricsRegistry()
        target.absorb(snap)
        c = target.collect()["counters"]
        assert c["shard_ops{shard=2}"] == 3.0
        assert c["shard_pages{phase=sweep,shard=2}"] == 5.0
        # relabeled families never collide with unlabeled globals
        target.counter("ops").inc()
        assert target.collect()["counters"]["ops"] == 1.0

    def test_with_labels_rejects_duplicate_label(self):
        snap = self.make_source().snapshot()
        with pytest.raises(ValueError, match="phase"):
            snap.with_labels(phase="0")

    def test_dict_round_trip_and_pickle(self):
        import pickle

        from repro.obs import RegistrySnapshot

        snap = self.make_source().snapshot()
        via_dict = RegistrySnapshot.from_dict(
            json.loads(json.dumps(snap.to_dict(), allow_nan=False))
        )
        via_pickle = pickle.loads(pickle.dumps(snap))
        for clone in (via_dict, via_pickle):
            target = MetricsRegistry()
            target.absorb(clone)
            assert target.collect() == self.make_source().collect()

    def test_absorb_respects_strict_registration(self):
        target = MetricsRegistry()
        target.counter("ops", labelnames=("x",))
        with pytest.raises(ValueError, match="labelnames"):
            target.absorb(self.make_source().snapshot())


class TestPromExport:
    def test_families_and_series(self):
        reg = MetricsRegistry()
        reg.counter("ops", "operations").inc(3)
        reg.counter("pages", labelnames=("phase",)).labels(phase="sweep").inc(5)
        reg.gauge("frames").set(2)
        text = reg.export_prom()
        assert "# TYPE ops counter" in text
        assert "# HELP ops operations" in text
        assert "ops 3" in text
        assert 'pages{phase="sweep"} 5' in text
        assert "# TYPE frames gauge" in text

    def test_histogram_exposition_is_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("ms", "latency", buckets=(1.0, 5.0))
        for v in (0.5, 0.7, 3.0, 70.0):
            h.observe(v)
        text = reg.export_prom()
        assert 'ms_bucket{le="1"} 2' in text
        assert 'ms_bucket{le="5"} 3' in text
        assert 'ms_bucket{le="+Inf"} 4' in text
        assert "ms_count 4" in text
        assert "ms_sum 74.2" in text

    def test_name_and_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("build.fallbacks", labelnames=("why",)).labels(
            why='fork "failed"\nhard'
        ).inc()
        text = reg.export_prom()
        assert "build_fallbacks" in text
        assert r"fork \"failed\"\nhard" in text

    def test_empty_registry_exports_empty(self):
        assert MetricsRegistry().export_prom() == ""


class TestExpositionEscapingAndExemplars:
    """Satellite coverage: the exposition corner cases a scraper sees."""

    def test_backslash_quote_newline_each_escaped(self):
        reg = MetricsRegistry()
        counter = reg.counter("c", labelnames=("v",))
        counter.labels(v="back\\slash").inc()
        counter.labels(v='quo"te').inc()
        counter.labels(v="new\nline").inc()
        text = reg.export_prom()
        assert r'c{v="back\\slash"} 1' in text
        assert r'c{v="quo\"te"} 1' in text
        assert r'c{v="new\nline"} 1' in text
        # no raw newline may survive inside a label value: every
        # exposition line must still parse as one series + one value
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert line.rstrip().rsplit(" ", 1)[1] == "1"

    def test_combined_escapes_round_trip_order(self):
        # backslash must be escaped first, or the other escapes'
        # backslashes get doubled
        reg = MetricsRegistry()
        reg.counter("c", labelnames=("v",)).labels(v='\\"\n').inc()
        assert r'c{v="\\\"\n"} 1' in reg.export_prom()

    def test_histogram_exemplar_formatting(self):
        reg = MetricsRegistry()
        h = reg.histogram("pages", "pages", buckets=(1.0, 10.0))
        h.observe(0.5, exemplar="trace-a")
        h.observe(5.0, exemplar={"trace_id": "trace-b"})
        h.observe(50.0)
        text = reg.export_prom()
        assert 'pages_bucket{le="1"} 1 # {trace_id="trace-a"} 0.5' in text
        assert 'pages_bucket{le="10"} 2 # {trace_id="trace-b"} 5' in text
        # the un-exemplared bucket carries no suffix
        assert 'pages_bucket{le="+Inf"} 3\n' in text

    def test_exemplar_last_observation_wins(self):
        reg = MetricsRegistry()
        h = reg.histogram("pages", buckets=(1.0,))
        h.observe(0.5, exemplar="first")
        h.observe(0.7, exemplar="second")
        text = reg.export_prom()
        assert 'trace_id="second"' in text
        assert "first" not in text

    def test_exemplar_value_is_the_observation(self):
        h = Histogram("h", buckets=(2.0,))
        h.observe(1.25, exemplar="t")
        assert h.exemplars[0] == ({"trace_id": "t"}, 1.25)

    def test_labeled_exemplar_values_escaped(self):
        reg = MetricsRegistry()
        h = reg.histogram("pages", buckets=(1.0,))
        h.observe(0.5, exemplar='odd"id')
        assert r'# {trace_id="odd\"id"} 0.5' in reg.export_prom()

    def test_exemplars_survive_json_export_absence(self):
        # exemplars are an exposition-only concept: the JSON snapshot
        # (CI artifacts) must stay byte-compatible without them
        reg = MetricsRegistry()
        h = reg.histogram("pages", buckets=(1.0,))
        h.observe(0.5, exemplar="t")
        assert "exemplar" not in reg.export_json()
