"""QueryTrace tests: span nesting, I/O attribution, no-op mode."""

import pytest

from repro.obs import QueryTrace, tracing
from repro.obs import trace as obs
from repro.storage import Pager
from repro.storage.stats import IOStats


def make_pager(pages: int = 4, frames: int = 0) -> tuple[Pager, list[int]]:
    pager = Pager(buffer_frames=frames)
    pids = [pager.allocate() for _ in range(pages)]
    for pid in pids:
        pager.write(pid, bytes([pid % 251]) * pager.page_size)
    pager.cool_down()
    pager.stats.reset()
    pager.buffer.hits = pager.buffer.misses = 0
    return pager, pids


class TestIOStatsRoundTrips:
    def test_snapshot_is_independent(self):
        stats = IOStats(logical_reads=3)
        snap = stats.snapshot()
        stats.logical_reads += 2
        assert snap.logical_reads == 3
        assert stats.logical_reads == 5

    def test_delta_since_inverts_snapshot(self):
        stats = IOStats()
        before = stats.snapshot()
        stats.logical_reads += 4
        stats.physical_writes += 1
        stats.allocations += 2
        delta = stats.delta_since(before)
        assert delta.logical_reads == 4
        assert delta.physical_writes == 1
        assert delta.allocations == 2
        assert delta.logical_writes == delta.physical_reads == delta.frees == 0
        # snapshot + delta round-trips back to the current counters
        for name, value in stats.as_dict().items():
            assert getattr(before, name) + getattr(delta, name) == value

    def test_reset_zeroes_in_place(self):
        stats = IOStats(1, 2, 3, 4, 5, 6)
        stats.reset()
        assert stats.as_dict() == {
            "logical_reads": 0, "logical_writes": 0, "physical_reads": 0,
            "physical_writes": 0, "allocations": 0, "frees": 0,
        }

    def test_as_dict_matches_page_accesses(self):
        stats = IOStats(logical_reads=2, logical_writes=3)
        assert stats.page_accesses == 5
        d = stats.as_dict()
        assert d["logical_reads"] + d["logical_writes"] == 5


class TestSpanTree:
    def test_nested_spans_attribute_io(self):
        pager, pids = make_pager()
        trace = QueryTrace(pager=pager, name="q")
        with trace.span("sweep.primary"):
            pager.read(pids[0])
            with trace.span("descend"):
                pager.read(pids[1])
                pager.read(pids[2])
        with trace.span("fetch"):
            pager.read(pids[3])
        root = trace.close()
        sweep = root.children[0]
        descend = sweep.children[0]
        fetch = root.children[1]
        assert sweep.pages == 3          # inclusive of the nested descend
        assert descend.pages == 2
        assert fetch.pages == 1
        assert root.pages == 4
        # exclusive per-phase accounting
        assert root.phase_pages() == {"q": 0, "sweep": 1, "descend": 2,
                                      "fetch": 1}

    def test_late_pager_binding(self):
        pager, pids = make_pager()
        trace = QueryTrace()  # no pager yet
        with trace.span("plan"):
            pass
        with trace.span("query", pager=pager):
            pager.read(pids[0])
        assert trace.pager is pager
        assert trace.root.children[1].pages == 1

    def test_counters_and_totals(self):
        trace = QueryTrace(name="q")
        with trace.span("sweep"):
            trace.incr("comparisons", 5)
            with trace.span("descend"):
                trace.incr("comparisons", 2)
                trace.incr("node_visits")
        root = trace.close()
        assert root.children[0].counters == {"comparisons": 5.0}
        assert root.total_counters() == {"comparisons": 7.0,
                                         "node_visits": 1.0}

    def test_phase_is_first_dotted_segment(self):
        trace = QueryTrace()
        with trace.span("sweep.app") as node:
            assert node.phase == "sweep"

    def test_to_dict_schema(self):
        pager, pids = make_pager()
        trace = QueryTrace(pager=pager, name="q", meta={"type": "EXIST"})
        with trace.span("fetch", k="v"):
            pager.read(pids[0])
        doc = trace.to_dict()
        assert doc["name"] == "q"
        assert doc["meta"] == {"type": "EXIST"}
        child = doc["children"][0]
        assert child["name"] == "fetch"
        assert child["meta"] == {"k": "v"}
        assert child["io"]["logical_reads"] == 1
        assert set(child["io"]) == {
            "logical_reads", "logical_writes", "physical_reads",
            "physical_writes", "allocations", "frees",
        }
        assert child["buffer"] == {"hits": 0, "misses": 1}
        assert child["elapsed_ms"] >= 0.0
        assert child["children"] == []

    def test_render_draws_every_span(self):
        pager, pids = make_pager()
        trace = QueryTrace(pager=pager, name="q")
        with trace.span("sweep"):
            pager.read(pids[0])
            with trace.span("descend"):
                pass
        text = trace.render()
        assert "sweep" in text and "descend" in text
        assert "1 pages" in text

    def test_buffer_hit_attribution(self):
        pager, pids = make_pager(frames=4)
        trace = QueryTrace(pager=pager, name="q")
        with trace.span("fetch"):
            pager.read(pids[0])
            pager.read(pids[0])
        node = trace.root.children[0]
        assert node.buffer_misses == 1
        assert node.buffer_hits == 1
        assert node.hit_ratio == pytest.approx(0.5)


class TestModuleHooks:
    def test_disabled_span_records_nothing(self):
        assert obs.current() is None
        with obs.span("sweep") as node:
            assert node is None
        obs.incr("comparisons")  # must not raise

    def test_active_trace_records(self):
        trace = QueryTrace(name="q")
        with tracing(trace):
            assert obs.current() is trace
            with obs.span("sweep"):
                obs.incr("comparisons", 3)
        assert obs.current() is None
        assert trace.root.children[0].counters == {"comparisons": 3.0}

    def test_tracing_does_not_nest(self):
        with tracing(QueryTrace()):
            with pytest.raises(RuntimeError):
                with tracing(QueryTrace()):
                    pass  # pragma: no cover

    def test_tracing_deactivates_on_error(self):
        with pytest.raises(KeyError):
            with tracing(QueryTrace()):
                raise KeyError("boom")
        assert obs.current() is None


class TestEndToEnd:
    """Disabling tracing changes no query results and adds no counters."""

    @pytest.fixture(scope="class")
    def planner(self):
        from repro.core import DualIndexPlanner, SlopeSet
        from repro.workloads import make_relation

        return DualIndexPlanner.build(
            make_relation(60, "small", seed=11), SlopeSet.uniform_angles(3)
        )

    def test_traced_equals_untraced(self, planner):
        baseline = planner.exist(0.5, 2.0)
        with tracing(QueryTrace(pager=planner.index.pager)) as trace:
            traced = planner.exist(0.5, 2.0)
        assert traced.ids == baseline.ids
        assert traced.page_accesses == baseline.page_accesses
        assert baseline.trace is None
        assert traced.trace is not None
        # the query span carries the whole query's I/O
        assert traced.trace.pages == traced.page_accesses
        phases = trace.root.children[0].phase_pages()
        assert sum(phases.values()) == traced.page_accesses

    def test_trace_spans_cover_expected_phases(self, planner):
        with tracing(QueryTrace(pager=planner.index.pager)):
            result = planner.all(0.5, -1.0)
        names = {node.phase for node in result.trace.walk()}
        assert {"query", "plan", "sweep", "fetch", "verify"} <= names


class TestMultiPagerAttribution:
    """Pager-token accounting across per-shard pagers."""

    def test_child_on_other_pager_adds_to_inclusive(self):
        pager_a, pids_a = make_pager()
        pager_b, pids_b = make_pager()
        trace = QueryTrace(pager=pager_a, name="fanout")
        with trace.span("query", pager=pager_a):
            pager_a.read(pids_a[0])
            # a sub-query measured on a *different* shard's pager: its
            # pages are invisible to the parent's snapshot delta
            with trace.span("query.shard", pager=pager_b):
                pager_b.read(pids_b[0])
                pager_b.read(pids_b[1])
        root = trace.close()
        outer = root.children[0]
        inner = outer.children[0]
        assert outer.pages == 1              # own measured delta only
        assert inner.pages == 2              # child pages exceed parent's
        assert outer.inclusive_pages() == 3  # token-aware sum
        assert root.pages == 3
        phases = root.phase_pages()
        assert phases == {"fanout": 0, "query": 3}
        assert sum(phases.values()) == root.inclusive_pages()

    def test_same_pager_child_not_double_counted(self):
        pager, pids = make_pager()
        trace = QueryTrace(pager=pager, name="q")
        with trace.span("sweep", pager=pager):
            pager.read(pids[0])
            with trace.span("descend"):   # inherits the same pager
                pager.read(pids[1])
        root = trace.close()
        sweep = root.children[0]
        assert sweep.pages == 2
        assert sweep.inclusive_pages() == 2  # child already inside delta
        assert root.pages == 2

    def test_exclusive_sums_to_inclusive_with_shard_mix(self):
        pagers = [make_pager() for _ in range(3)]
        trace = QueryTrace(name="fan")
        with trace.span("batch", pager=pagers[0][0]):
            pagers[0][0].read(pagers[0][1][0])
            for pager, pids in pagers[1:]:
                with trace.span("query.sub", pager=pager):
                    pager.read(pids[0])
                    with trace.span("fetch"):
                        pager.read(pids[1])
        root = trace.close()
        assert root.inclusive_pages() == 5
        assert sum(root.phase_pages().values()) == 5

    def test_pager_token_recorded(self):
        pager, pids = make_pager()
        trace = QueryTrace(pager=pager)
        with trace.span("a"):
            pass
        with trace.span("b", pager=pager):
            pass
        a, b = trace.root.children
        assert a.pager_token == b.pager_token == id(pager)
        unbound = QueryTrace()
        with unbound.span("c"):
            pass
        assert unbound.root.children[0].pager_token is None

    def test_span_start_offsets_are_monotonic(self):
        trace = QueryTrace(name="t")
        with trace.span("first"):
            pass
        with trace.span("second"):
            pass
        first, second = trace.root.children
        assert 0.0 <= first.start <= second.start
        assert trace.to_dict()["children"][0]["start_ms"] >= 0.0


class TestDegenerateTrees:
    """phase_pages() on empty / single-span / childless shapes."""

    def test_empty_trace(self):
        trace = QueryTrace(name="empty")
        root = trace.close()
        assert root.children == []
        assert root.phase_pages() == {"empty": 0}
        assert root.inclusive_pages() == 0
        assert root.inclusive_buffer() == (0, 0)

    def test_single_span(self):
        pager, pids = make_pager()
        trace = QueryTrace(pager=pager, name="one")
        with trace.span("fetch"):
            pager.read(pids[0])
        root = trace.close()
        assert root.phase_pages() == {"one": 0, "fetch": 1}
        assert sum(root.phase_pages().values()) == root.inclusive_pages() == 1

    def test_unmeasured_spans_are_zero(self):
        trace = QueryTrace(name="t")  # never bound to any pager
        with trace.span("sweep"):
            with trace.span("descend"):
                pass
        root = trace.close()
        assert root.phase_pages() == {"t": 0, "sweep": 0, "descend": 0}

    def test_phase_times_clamped_non_negative(self):
        trace = QueryTrace(name="t")
        with trace.span("sweep"):
            pass
        root = trace.close()
        for value in root.phase_times().values():
            assert value >= 0.0


class TestNoOpModeBitIdentical:
    """S3: tracing disabled must change nothing — answers or counters."""

    def test_untraced_runs_identical_before_and_after_tracing(self):
        from repro.core import DualIndexPlanner, SlopeSet
        from repro.workloads import make_relation

        planner = DualIndexPlanner.build(
            make_relation(60, "small", seed=11), SlopeSet.uniform_angles(3)
        )

        def footprint():
            res = planner.exist(0.5, 2.0)
            return (
                sorted(res.ids), res.candidates, res.false_hits,
                res.duplicates, res.refinement_pages,
                res.io.as_dict(), res.trace,
            )

        before = footprint()
        with tracing(QueryTrace(pager=planner.index.pager)):
            planner.exist(0.5, 2.0)
        after = footprint()
        assert before == after
        assert before[-1] is None  # no trace attached in no-op mode

    def test_disabled_mode_touches_no_registry(self):
        from repro.core import DualIndexPlanner, SlopeSet
        from repro.obs import get_registry
        from repro.workloads import make_relation

        planner = DualIndexPlanner.build(
            make_relation(40, "small", seed=3), SlopeSet.uniform_angles(3)
        )
        snapshot = get_registry().collect()
        planner.all(0.25, 1.0)
        assert get_registry().collect() == snapshot
