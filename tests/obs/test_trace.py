"""QueryTrace tests: span nesting, I/O attribution, no-op mode."""

import pytest

from repro.obs import QueryTrace, tracing
from repro.obs import trace as obs
from repro.storage import Pager
from repro.storage.stats import IOStats


def make_pager(pages: int = 4, frames: int = 0) -> tuple[Pager, list[int]]:
    pager = Pager(buffer_frames=frames)
    pids = [pager.allocate() for _ in range(pages)]
    for pid in pids:
        pager.write(pid, bytes([pid % 251]) * pager.page_size)
    pager.cool_down()
    pager.stats.reset()
    pager.buffer.hits = pager.buffer.misses = 0
    return pager, pids


class TestIOStatsRoundTrips:
    def test_snapshot_is_independent(self):
        stats = IOStats(logical_reads=3)
        snap = stats.snapshot()
        stats.logical_reads += 2
        assert snap.logical_reads == 3
        assert stats.logical_reads == 5

    def test_delta_since_inverts_snapshot(self):
        stats = IOStats()
        before = stats.snapshot()
        stats.logical_reads += 4
        stats.physical_writes += 1
        stats.allocations += 2
        delta = stats.delta_since(before)
        assert delta.logical_reads == 4
        assert delta.physical_writes == 1
        assert delta.allocations == 2
        assert delta.logical_writes == delta.physical_reads == delta.frees == 0
        # snapshot + delta round-trips back to the current counters
        for name, value in stats.as_dict().items():
            assert getattr(before, name) + getattr(delta, name) == value

    def test_reset_zeroes_in_place(self):
        stats = IOStats(1, 2, 3, 4, 5, 6)
        stats.reset()
        assert stats.as_dict() == {
            "logical_reads": 0, "logical_writes": 0, "physical_reads": 0,
            "physical_writes": 0, "allocations": 0, "frees": 0,
        }

    def test_as_dict_matches_page_accesses(self):
        stats = IOStats(logical_reads=2, logical_writes=3)
        assert stats.page_accesses == 5
        d = stats.as_dict()
        assert d["logical_reads"] + d["logical_writes"] == 5


class TestSpanTree:
    def test_nested_spans_attribute_io(self):
        pager, pids = make_pager()
        trace = QueryTrace(pager=pager, name="q")
        with trace.span("sweep.primary"):
            pager.read(pids[0])
            with trace.span("descend"):
                pager.read(pids[1])
                pager.read(pids[2])
        with trace.span("fetch"):
            pager.read(pids[3])
        root = trace.close()
        sweep = root.children[0]
        descend = sweep.children[0]
        fetch = root.children[1]
        assert sweep.pages == 3          # inclusive of the nested descend
        assert descend.pages == 2
        assert fetch.pages == 1
        assert root.pages == 4
        # exclusive per-phase accounting
        assert root.phase_pages() == {"q": 0, "sweep": 1, "descend": 2,
                                      "fetch": 1}

    def test_late_pager_binding(self):
        pager, pids = make_pager()
        trace = QueryTrace()  # no pager yet
        with trace.span("plan"):
            pass
        with trace.span("query", pager=pager):
            pager.read(pids[0])
        assert trace.pager is pager
        assert trace.root.children[1].pages == 1

    def test_counters_and_totals(self):
        trace = QueryTrace(name="q")
        with trace.span("sweep"):
            trace.incr("comparisons", 5)
            with trace.span("descend"):
                trace.incr("comparisons", 2)
                trace.incr("node_visits")
        root = trace.close()
        assert root.children[0].counters == {"comparisons": 5.0}
        assert root.total_counters() == {"comparisons": 7.0,
                                         "node_visits": 1.0}

    def test_phase_is_first_dotted_segment(self):
        trace = QueryTrace()
        with trace.span("sweep.app") as node:
            assert node.phase == "sweep"

    def test_to_dict_schema(self):
        pager, pids = make_pager()
        trace = QueryTrace(pager=pager, name="q", meta={"type": "EXIST"})
        with trace.span("fetch", k="v"):
            pager.read(pids[0])
        doc = trace.to_dict()
        assert doc["name"] == "q"
        assert doc["meta"] == {"type": "EXIST"}
        child = doc["children"][0]
        assert child["name"] == "fetch"
        assert child["meta"] == {"k": "v"}
        assert child["io"]["logical_reads"] == 1
        assert set(child["io"]) == {
            "logical_reads", "logical_writes", "physical_reads",
            "physical_writes", "allocations", "frees",
        }
        assert child["buffer"] == {"hits": 0, "misses": 1}
        assert child["elapsed_ms"] >= 0.0
        assert child["children"] == []

    def test_render_draws_every_span(self):
        pager, pids = make_pager()
        trace = QueryTrace(pager=pager, name="q")
        with trace.span("sweep"):
            pager.read(pids[0])
            with trace.span("descend"):
                pass
        text = trace.render()
        assert "sweep" in text and "descend" in text
        assert "1 pages" in text

    def test_buffer_hit_attribution(self):
        pager, pids = make_pager(frames=4)
        trace = QueryTrace(pager=pager, name="q")
        with trace.span("fetch"):
            pager.read(pids[0])
            pager.read(pids[0])
        node = trace.root.children[0]
        assert node.buffer_misses == 1
        assert node.buffer_hits == 1
        assert node.hit_ratio == pytest.approx(0.5)


class TestModuleHooks:
    def test_disabled_span_records_nothing(self):
        assert obs.current() is None
        with obs.span("sweep") as node:
            assert node is None
        obs.incr("comparisons")  # must not raise

    def test_active_trace_records(self):
        trace = QueryTrace(name="q")
        with tracing(trace):
            assert obs.current() is trace
            with obs.span("sweep"):
                obs.incr("comparisons", 3)
        assert obs.current() is None
        assert trace.root.children[0].counters == {"comparisons": 3.0}

    def test_tracing_does_not_nest(self):
        with tracing(QueryTrace()):
            with pytest.raises(RuntimeError):
                with tracing(QueryTrace()):
                    pass  # pragma: no cover

    def test_tracing_deactivates_on_error(self):
        with pytest.raises(KeyError):
            with tracing(QueryTrace()):
                raise KeyError("boom")
        assert obs.current() is None


class TestEndToEnd:
    """Disabling tracing changes no query results and adds no counters."""

    @pytest.fixture(scope="class")
    def planner(self):
        from repro.core import DualIndexPlanner, SlopeSet
        from repro.workloads import make_relation

        return DualIndexPlanner.build(
            make_relation(60, "small", seed=11), SlopeSet.uniform_angles(3)
        )

    def test_traced_equals_untraced(self, planner):
        baseline = planner.exist(0.5, 2.0)
        with tracing(QueryTrace(pager=planner.index.pager)) as trace:
            traced = planner.exist(0.5, 2.0)
        assert traced.ids == baseline.ids
        assert traced.page_accesses == baseline.page_accesses
        assert baseline.trace is None
        assert traced.trace is not None
        # the query span carries the whole query's I/O
        assert traced.trace.pages == traced.page_accesses
        phases = trace.root.children[0].phase_pages()
        assert sum(phases.values()) == traced.page_accesses

    def test_trace_spans_cover_expected_phases(self, planner):
        with tracing(QueryTrace(pager=planner.index.pager)):
            result = planner.all(0.5, -1.0)
        names = {node.phase for node in result.trace.walk()}
        assert {"query", "plan", "sweep", "fetch", "verify"} <= names
