"""Merged multi-key sweeps deliver exactly what per-query sweeps would."""

import random

import pytest

from repro.btree import BPlusTree
from repro.storage import KeyCodec, Pager


def small_tree(key_bytes=8):
    # 256-byte pages force splits early: deep trees from few entries.
    return BPlusTree(Pager(page_size=256), KeyCodec(key_bytes), 0)


@pytest.fixture
def loaded():
    tree = small_tree()
    rng = random.Random(7)
    for i in range(400):
        tree.insert(rng.uniform(-100.0, 100.0), i)
    return tree


STARTS = [-120.0, -33.3, 0.0, 0.0, 42.7, 99.9, 150.0]  # dups + out of range


def test_up_multi_matches_per_query_sweeps(loaded):
    ms = loaded.sweep_up_multi(STARTS)
    for i, start in enumerate(STARTS):
        keys, rids = ms.entries_for(i)
        assert list(zip(keys, rids)) == list(loaded.items_from(start))


def test_down_multi_matches_per_query_sweeps(loaded):
    ms = loaded.sweep_down_multi(STARTS)
    for i, start in enumerate(STARTS):
        keys, rids = ms.entries_for(i)
        assert list(zip(keys, rids)) == list(loaded.items_to(start))


def test_merged_sweep_costs_no_more_than_widest_query(loaded):
    pager = loaded.pager
    with pager.measure() as scope:
        loaded.sweep_up_multi(STARTS)
    merged = scope.delta.logical_reads
    per_query = 0
    for start in STARTS:
        with pager.measure() as scope:
            list(loaded.items_from(start))
        per_query += scope.delta.logical_reads
    assert merged < per_query
    # one descent + the widest sweep: bounded by the cheapest single query
    with pager.measure() as scope:
        list(loaded.items_from(min(STARTS)))
    assert merged <= scope.delta.logical_reads


def test_empty_tree():
    tree = small_tree()
    ms = tree.sweep_up_multi([1.0, 2.0])
    assert ms.keys == [] and ms.offsets == [0, 0] and ms.leaves == 0
    ms = tree.sweep_down_multi([1.0])
    assert ms.entries_for(0) == ([], [])


def test_empty_starts(loaded):
    ms = loaded.sweep_up_multi([])
    assert ms.keys == [] and ms.offsets == []


def test_duplicate_starts_share_offsets(loaded):
    ms = loaded.sweep_up_multi([5.0, 5.0])
    assert ms.offsets[0] == ms.offsets[1]
    assert ms.entries_for(0) == ms.entries_for(1)
