"""Columnar node codecs and vectorized descent vs the scalar path.

Satellite coverage for the columnar hot path: array (de)serialization
round-trips must carry exactly what the scalar decoders carry, and
``np.searchsorted`` descent must agree with the scalar per-entry walk on
the degenerate shapes where off-by-ones live — empty trees, a single
leaf, long duplicate-key runs, and start keys that hit stored keys
exactly.
"""

import numpy as np
import pytest

from repro.btree import BPlusTree
from repro.btree.columnar import ColumnarCache
from repro.btree.node import LeafNode, InternalNode, NodeLayout
from repro.storage import KeyCodec, Pager


def make_layout(key_bytes=8, aux_slots=0, page_size=256):
    return NodeLayout(page_size, KeyCodec(key_bytes), aux_slots)


def tree_pair(entries, key_bytes=8, aux_slots=0, page_size=256):
    """(scalar tree, columnar tree) loaded with the same entries."""
    trees = []
    for columnar in (False, True):
        tree = BPlusTree(
            Pager(page_size=page_size), KeyCodec(key_bytes), aux_slots,
            columnar=columnar,
        )
        for key, rid in entries:
            tree.insert(key, rid)
        trees.append(tree)
    return trees


class TestArrayRoundTrips:
    @pytest.mark.parametrize("key_bytes", [4, 8])
    def test_leaf_arrays_match_scalar_decode(self, key_bytes):
        layout = make_layout(key_bytes=key_bytes, aux_slots=2)
        node = LeafNode(
            keys=[-3.25, -3.25, 0.0, 1.5, 7.75],
            rids=[5, 9, 1, 0, 4_000_000_000],
            prev=12, next=13,
            aux=[1.5, -2.25],
        )
        data = layout.encode_leaf(node)
        scalar = layout.decode_leaf(data)
        arrays = layout.decode_leaf_arrays(data)
        assert arrays.keys.tolist() == scalar.keys
        assert arrays.rids.tolist() == scalar.rids
        assert (arrays.prev, arrays.next) == (scalar.prev, scalar.next)
        assert arrays.keys.dtype == np.float64
        assert arrays.rids.dtype == np.int64

    def test_leaf_arrays_empty(self):
        layout = make_layout()
        data = layout.encode_leaf(LeafNode())
        arrays = layout.decode_leaf_arrays(data)
        assert arrays.keys.size == 0
        assert arrays.rids.size == 0

    def test_leaf_arrays_read_only(self):
        layout = make_layout()
        data = layout.encode_leaf(LeafNode(keys=[1.0], rids=[2]))
        arrays = layout.decode_leaf_arrays(data)
        with pytest.raises(ValueError):
            arrays.keys[0] = 9.0
        with pytest.raises(ValueError):
            arrays.rids[0] = 9

    @pytest.mark.parametrize("key_bytes", [4, 8])
    def test_internal_arrays_match_scalar_decode(self, key_bytes):
        layout = make_layout(key_bytes=key_bytes)
        node = InternalNode(
            seps=[(-1.0, 3), (2.5, 0), (2.5, 7)],
            children=[10, 11, 12, 13],
        )
        data = layout.encode_internal(node)
        scalar = layout.decode_internal(data)
        arrays = layout.decode_internal_arrays(data)
        assert list(zip(arrays.keys.tolist(), arrays.rids.tolist())) == scalar.seps
        assert arrays.children.tolist() == scalar.children
        assert len(arrays.children) == len(arrays.keys) + 1

    def test_internal_arrays_sentinel_rid_widens(self):
        # 0xFFFFFFFF on page must survive as a positive int64, not wrap.
        layout = make_layout()
        node = InternalNode(seps=[(0.0, 0xFFFFFFFF)], children=[1, 2])
        data = layout.encode_internal(node)
        arrays = layout.decode_internal_arrays(data)
        assert arrays.rids[0] == 0xFFFFFFFF

    def test_quantized_keys_identical_across_decoders(self):
        # 4-byte keys quantize; both decoders must widen the *same* f32.
        layout = make_layout(key_bytes=4)
        keys = [0.1, 1e-40, 3.14159265358979, -2.0 / 3.0]
        data = layout.encode_leaf(LeafNode(keys=keys, rids=[0, 1, 2, 3]))
        assert layout.decode_leaf_arrays(data).keys.tolist() == \
            layout.decode_leaf(data).keys


class TestColumnarCache:
    def test_decode_once_then_hit(self):
        layout = make_layout()
        cache = ColumnarCache(layout)
        data = layout.encode_leaf(LeafNode(keys=[1.0], rids=[2]))
        first = cache.leaf(7, data)
        assert cache.leaf(7, data) is first
        cache.invalidate(7)
        assert cache.leaf(7, data) is not first

    def test_capacity_evicts_without_changing_answers(self):
        layout = make_layout()
        cache = ColumnarCache(layout, capacity=2)
        images = {
            pid: layout.encode_leaf(LeafNode(keys=[float(pid)], rids=[pid]))
            for pid in range(5)
        }
        for pid, data in images.items():
            cache.leaf(pid, data)
        assert len(cache) <= 2
        for pid, data in images.items():
            assert cache.leaf(pid, data).keys.tolist() == [float(pid)]


#: Degenerate entry sets the descent/sweep comparison runs over.
DEGENERATE_CASES = {
    "empty": [],
    "single-leaf": [(2.0, 0), (4.0, 1), (4.5, 2)],
    "duplicate-keys": [(1.0, rid) for rid in range(120)]
    + [(2.0, rid) for rid in range(120, 150)],
    "deep-mixed": [((i * 7) % 50 / 3.0, i) for i in range(300)],
}


def starts_for(entries):
    """Probe keys: every stored key (boundary-exact), midpoints, and
    out-of-range sentinels on both sides."""
    keys = sorted({k for k, _ in entries})
    starts = list(keys)
    starts += [(a + b) / 2.0 for a, b in zip(keys, keys[1:])]
    starts += [-1e9, 1e9, 0.0]
    return starts


@pytest.mark.parametrize("case", sorted(DEGENERATE_CASES))
class TestDescentParity:
    def test_search_matches_scalar(self, case):
        entries = DEGENERATE_CASES[case]
        scalar, columnar = tree_pair(entries)
        for key in starts_for(entries):
            assert columnar.search(key) == scalar.search(key), key
        columnar.check_invariants()

    def test_multi_sweeps_match_scalar(self, case):
        entries = DEGENERATE_CASES[case]
        scalar, columnar = tree_pair(entries)
        starts = starts_for(entries)
        for method in ("sweep_up_multi", "sweep_down_multi"):
            got = getattr(columnar, method)(starts)
            want = getattr(scalar, method)(starts)
            gk, gr = got.arrays()
            wk, wr = want.arrays()
            assert gk.tolist() == wk.tolist(), method
            assert gr.tolist() == wr.tolist(), method
            assert list(got.offsets) == list(want.offsets), method
            assert got.leaves == want.leaves, method
            for i in range(len(starts)):
                assert got.entries_for(i) == want.entries_for(i)

    def test_page_accounting_bit_identical(self, case):
        entries = DEGENERATE_CASES[case]
        scalar, columnar = tree_pair(entries)
        starts = starts_for(entries)
        counts = []
        for tree in (scalar, columnar):
            before = tree.pager.stats.logical_reads
            tree.sweep_up_multi(starts)
            tree.sweep_down_multi(starts)
            for key in starts:
                tree.search(key)
            counts.append(tree.pager.stats.logical_reads - before)
        assert counts[0] == counts[1]


class TestWriteInvalidation:
    def test_insert_after_read_is_visible(self):
        # A cached decoded page must never mask a subsequent write.
        _, columnar = tree_pair([(float(i), i) for i in range(50)])
        assert columnar.search(25.0) == [25]
        columnar.insert(25.0, 999)
        assert sorted(columnar.search(25.0)) == [25, 999]
        columnar.delete(25.0, 25)
        assert columnar.search(25.0) == [999]
        columnar.check_invariants()

    def test_scalar_env_forces_scalar_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR", "1")
        tree = BPlusTree(Pager(page_size=256), KeyCodec(8))
        assert tree.columnar is False
        monkeypatch.delenv("REPRO_SCALAR")
        tree = BPlusTree(Pager(page_size=256), KeyCodec(8))
        assert tree.columnar is True
