"""Property-based B+-tree tests (hypothesis stateful-style workloads)."""

from hypothesis import given, settings, strategies as st

from repro.storage import KeyCodec, Pager
from repro.btree import BPlusTree

key = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)
op = st.tuples(st.sampled_from(["insert", "delete", "sweep"]), key)


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(op, min_size=1, max_size=200))
def test_tree_matches_reference_model(ops):
    """The tree behaves like a sorted multiset of (key, rid) pairs."""
    tree = BPlusTree(Pager(page_size=256), KeyCodec(8), aux_slots=4)
    reference: list[tuple[float, int]] = []
    next_rid = 0
    for action, k in ops:
        if action == "insert":
            tree.insert(k, next_rid)
            reference.append((k, next_rid))
            next_rid += 1
        elif action == "delete" and reference:
            # delete the reference entry with the closest key
            target = min(reference, key=lambda e: abs(e[0] - k))
            assert tree.delete(*target)
            reference.remove(target)
        elif action == "sweep":
            got_up = list(tree.items_from(k))
            want_up = sorted(e for e in reference if e[0] >= k)
            assert got_up == want_up
            got_down = list(tree.items_to(k))
            want_down = sorted(
                (e for e in reference if e[0] <= k), reverse=True
            )
            assert got_down == want_down
    tree.check_invariants()
    assert list(tree.items()) == sorted(reference)


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(key, min_size=1, max_size=300),
    fill=st.floats(min_value=0.5, max_value=1.0),
)
def test_bulk_load_any_fill(keys, fill):
    tree = BPlusTree(Pager(page_size=256), KeyCodec(8))
    entries = [(k, i) for i, k in enumerate(keys)]
    tree.bulk_load(entries, fill=fill)
    tree.check_invariants()
    assert list(tree.items()) == sorted(entries)


@settings(max_examples=30, deadline=None)
@given(keys=st.lists(key, min_size=1, max_size=200))
def test_quantized_insert_always_findable(keys):
    """With 4-byte keys, whatever was inserted can be found and deleted
    using the original (unquantised) key."""
    tree = BPlusTree(Pager(page_size=256), KeyCodec(4))
    for i, k in enumerate(keys):
        tree.insert(k, i)
    for i, k in enumerate(keys):
        assert tree.contains(k, i)
    for i, k in enumerate(keys):
        assert tree.delete(k, i)
    assert len(tree) == 0
