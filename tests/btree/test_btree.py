"""B+-tree structural and functional tests."""

import random

import pytest

from repro.errors import IndexError_
from repro.storage import KeyCodec, Pager
from repro.btree import BPlusTree


def small_tree(aux_slots=0, key_bytes=8):
    # 256-byte pages force splits early: deep trees from few entries.
    return BPlusTree(Pager(page_size=256), KeyCodec(key_bytes), aux_slots)


class TestBasics:
    def test_empty(self):
        tree = small_tree()
        assert len(tree) == 0
        assert tree.search(1.0) == []
        assert list(tree.items()) == []
        assert not tree.delete(1.0, 0)
        tree.check_invariants()

    def test_single_insert(self):
        tree = small_tree()
        tree.insert(5.0, 10)
        assert tree.search(5.0) == [10]
        assert tree.contains(5.0, 10)
        assert not tree.contains(5.0, 11)
        tree.check_invariants()

    def test_layout_capacities_paper_config(self):
        tree = BPlusTree(Pager(page_size=1024), KeyCodec(4), aux_slots=4)
        # leaf: (1024 - 4 - 8 - 16) / (4+4) = 124
        assert tree.layout.leaf_capacity == 124
        # internal: (1024 - 4 - 4) / (4+4+4) = 84
        assert tree.layout.internal_capacity == 84

    def test_sorted_iteration(self):
        tree = small_tree()
        rng = random.Random(1)
        entries = [(rng.uniform(-100, 100), i) for i in range(500)]
        for k, r in entries:
            tree.insert(k, r)
        assert list(tree.items()) == sorted(entries)
        tree.check_invariants()


class TestSweeps:
    @pytest.fixture
    def loaded(self):
        tree = small_tree()
        for i in range(300):
            tree.insert(float(i), i)
        return tree

    def test_items_from_inclusive(self, loaded):
        got = list(loaded.items_from(150.0))
        assert got[0] == (150.0, 150)
        assert len(got) == 150

    def test_items_from_exclusive(self, loaded):
        got = list(loaded.items_from(150.0, inclusive=False))
        assert got[0] == (151.0, 151)

    def test_items_to(self, loaded):
        got = list(loaded.items_to(10.0))
        assert got == [(float(i), i) for i in range(10, -1, -1)]

    def test_items_from_beyond_end(self, loaded):
        assert list(loaded.items_from(1000.0)) == []

    def test_items_to_before_start(self, loaded):
        assert list(loaded.items_to(-1.0)) == []

    def test_sweep_counts_page_reads(self, loaded):
        pager = loaded.pager
        with pager.measure() as scope:
            list(loaded.items())
        # full scan reads every leaf once plus the descent
        assert scope.delta.logical_reads >= loaded.page_count // 2


class TestDuplicates:
    def test_many_equal_keys(self):
        tree = small_tree()
        for i in range(400):
            tree.insert(7.0, i)
        tree.check_invariants()
        assert sorted(tree.search(7.0)) == list(range(400))

    def test_delete_specific_duplicate(self):
        tree = small_tree()
        for i in range(100):
            tree.insert(7.0, i)
        assert tree.delete(7.0, 55)
        assert not tree.delete(7.0, 55)
        assert 55 not in tree.search(7.0)
        assert len(tree.search(7.0)) == 99
        tree.check_invariants()

    def test_duplicates_across_keys(self):
        tree = small_tree()
        rng = random.Random(2)
        entries = []
        for i in range(600):
            key = float(rng.randint(0, 20))
            entries.append((key, i))
            tree.insert(key, i)
        tree.check_invariants()
        for key in range(21):
            want = sorted(r for k, r in entries if k == float(key))
            assert sorted(tree.search(float(key))) == want


class TestDeleteRebalance:
    def test_delete_everything_random_order(self):
        tree = small_tree()
        rng = random.Random(3)
        entries = [(rng.uniform(-50, 50), i) for i in range(800)]
        for k, r in entries:
            tree.insert(k, r)
        rng.shuffle(entries)
        for count, (k, r) in enumerate(entries):
            assert tree.delete(k, r), (k, r)
            if count % 97 == 0:
                tree.check_invariants()
        assert len(tree) == 0
        assert tree.root is None
        tree.check_invariants()

    def test_interleaved_insert_delete(self):
        tree = small_tree()
        rng = random.Random(4)
        live = {}
        next_rid = 0
        for _ in range(3000):
            if live and rng.random() < 0.45:
                rid = rng.choice(list(live))
                assert tree.delete(live.pop(rid), rid)
            else:
                key = rng.uniform(-10, 10)
                tree.insert(key, next_rid)
                live[next_rid] = tree.quantize(key)
                next_rid += 1
        tree.check_invariants()
        assert len(tree) == len(live)
        assert sorted(r for _, r in tree.items()) == sorted(live)

    def test_missing_delete_returns_false(self):
        tree = small_tree()
        tree.insert(1.0, 1)
        assert not tree.delete(2.0, 1)
        assert not tree.delete(1.0, 2)


class TestBulkLoad:
    def test_equivalent_to_inserts(self):
        rng = random.Random(5)
        entries = [(rng.uniform(-100, 100), i) for i in range(1500)]
        bulk = small_tree()
        bulk.bulk_load(entries)
        bulk.check_invariants()
        assert list(bulk.items()) == sorted(entries)

    def test_bulk_load_empty(self):
        tree = small_tree()
        tree.bulk_load([])
        assert tree.root is None

    def test_bulk_load_nonempty_rejected(self):
        tree = small_tree()
        tree.insert(1.0, 1)
        with pytest.raises(IndexError_):
            tree.bulk_load([(2.0, 2)])

    def test_bad_fill_rejected(self):
        with pytest.raises(IndexError_):
            small_tree().bulk_load([(1.0, 1)], fill=0.1)

    def test_bulk_load_then_updates(self):
        tree = small_tree()
        tree.bulk_load([(float(i), i) for i in range(500)])
        for i in range(0, 500, 3):
            assert tree.delete(float(i), i)
        for i in range(500, 600):
            tree.insert(float(i), i)
        tree.check_invariants()

    def test_space_scales_with_fill(self):
        entries = [(float(i), i) for i in range(2000)]
        dense = small_tree()
        dense.bulk_load(entries, fill=1.0)
        sparse = small_tree()
        sparse.bulk_load(entries, fill=0.6)
        assert dense.page_count < sparse.page_count


class TestQuantizedKeys:
    def test_f32_keys_roundtrip_search(self):
        tree = small_tree(key_bytes=4)
        value = 1.2345678901234
        tree.insert(value, 9)
        assert tree.search(value) == [9]  # search quantizes identically
        assert tree.delete(value, 9)

    def test_page_persistence(self):
        # every node lives in pages: a fresh decode sees identical data
        tree = small_tree()
        for i in range(200):
            tree.insert(float(i), i)
        root_before = list(tree.items())
        # force re-decoding from the pager (no in-memory node cache exists)
        assert list(tree.items()) == root_before
