"""ShardedDualIndex: partitioning, merging, and sharded ≡ unsharded."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import DualIndexPlanner, HalfPlaneQuery, SlopeSet
from repro.errors import IndexError_
from repro.shard import ShardedDualIndex, shard_of
from repro.workloads import make_relation
from tests.conftest import random_bounded_tuple, random_mixed_relation

SLOPES = SlopeSet([-2.0, -0.5, 0.5, 2.0])


def _random_queries(rng: random.Random, count: int) -> list[HalfPlaneQuery]:
    return [
        HalfPlaneQuery(
            rng.choice(["ALL", "EXIST"]),
            rng.uniform(-3.0, 3.0),
            rng.uniform(-60.0, 60.0),
            rng.choice([">=", "<="]),
        )
        for _ in range(count)
    ]


def test_shard_of_partitions_every_tuple_once():
    ids = list(range(97))
    for shards in (1, 2, 3, 4):
        buckets = [[] for _ in range(shards)]
        for tid in ids:
            buckets[shard_of(tid, shards)].append(tid)
        assert sorted(tid for b in buckets for tid in b) == ids


def test_build_partitions_by_tuple_id():
    relation = make_relation(50, "small", seed=2)
    engine = ShardedDualIndex.build(relation, SLOPES, shards=3)
    try:
        assert engine.shards == 3
        assert engine.size + len(engine.skipped) == len(relation)
        for n, planner in enumerate(engine.planners):
            for tid in planner.index.rid_of:
                assert shard_of(tid, 3) == n
    finally:
        engine.close()


def test_build_rejects_zero_shards():
    relation = make_relation(10, "small", seed=2)
    with pytest.raises(IndexError_):
        ShardedDualIndex.build(relation, SLOPES, shards=0)
    with pytest.raises(IndexError_):
        ShardedDualIndex([])


def test_merged_accounting_sums_shards():
    rng = random.Random(12)
    relation = random_mixed_relation(rng, 40)
    engine = ShardedDualIndex.build(relation, SLOPES, shards=2)
    try:
        query = HalfPlaneQuery("EXIST", 0.3, 1.0, ">=")
        partials = [p.query(query) for p in engine.planners]
        merged = engine.query(query)
        assert merged.ids == set().union(*(p.ids for p in partials))
        assert merged.candidates == sum(p.candidates for p in partials)
        assert merged.refinement_pages == sum(
            p.refinement_pages for p in partials
        )
        space = engine.space()
        assert space.tree_pages == sum(
            p.index.space().tree_pages for p in engine.planners
        )
    finally:
        engine.close()


def test_query_batch_matches_per_query_fanout():
    rng = random.Random(3)
    relation = random_mixed_relation(rng, 36)
    engine = ShardedDualIndex.build(relation, SLOPES, shards=2)
    try:
        queries = _random_queries(rng, 10)
        batch = engine.query_batch(queries)
        assert len(batch.results) == len(queries)
        for query, result in zip(queries, batch.results):
            assert result.ids == engine.query(query).ids
    finally:
        engine.close()


def test_updates_route_to_owning_shard():
    rng = random.Random(8)
    relation = random_mixed_relation(rng, 24)
    planners = [
        DualIndexPlanner.build(
            relation.subset(
                [tid for tid, _t in relation if shard_of(tid, 2) == n]
            ),
            SLOPES,
            dynamic=True,
        )
        for n in range(2)
    ]
    engine = ShardedDualIndex(planners)
    try:
        new_tid = max(tid for tid, _t in relation) + 1
        t = random_bounded_tuple(rng)
        engine.insert(new_tid, t)
        owner = engine.planners[shard_of(new_tid, 2)]
        assert new_tid in owner.index.rid_of
        engine.delete(new_tid)
        assert new_tid not in owner.index.rid_of
    finally:
        engine.close()


def test_parallel_sharded_build_matches_serial_layout():
    slopes = SlopeSet.uniform_angles(3)
    serial = ShardedDualIndex.build(
        make_relation(90, "small", seed=21), slopes, shards=2, workers=0
    )
    parallel = ShardedDualIndex.build(
        make_relation(90, "small", seed=21), slopes, shards=2, workers=4
    )
    try:
        for a, b in zip(serial.planners, parallel.planners):
            for ta, tb in zip(
                a.index.up + a.index.down, b.index.up + b.index.down
            ):
                la = [
                    (v.leaf.keys, v.leaf.rids, v.leaf.aux)
                    for v in ta.sweep_up(float("-inf"))
                ]
                lb = [
                    (v.leaf.keys, v.leaf.rids, v.leaf.aux)
                    for v in tb.sweep_up(float("-inf"))
                ]
                assert la == lb, ta.name
            assert a.index.assign_extrema == b.index.assign_extrema
    finally:
        serial.close()
        parallel.close()


@given(seed=st.integers(min_value=0, max_value=10_000))
def test_sharded_equals_unsharded_property(seed):
    """sharded(N) ≡ unsharded for N ∈ {1, 2, 4} on mixed workloads."""
    rng = random.Random(seed)
    relation = random_mixed_relation(rng, 12)
    queries = _random_queries(rng, 6)
    reference = DualIndexPlanner.build(relation, SLOPES)
    expected = [frozenset(reference.query(q).ids) for q in queries]
    for shards in (1, 2, 4):
        engine = ShardedDualIndex.build(relation, SLOPES, shards=shards)
        try:
            for query, want in zip(queries, expected):
                assert frozenset(engine.query(query).ids) == want, (
                    shards,
                    query,
                )
            batch = engine.query_batch(queries)
            for result, want in zip(batch.results, expected):
                assert frozenset(result.ids) == want, shards
        finally:
            engine.close()


def test_facade_registry_gets_labeled_shard_series():
    """Every query/batch drains shard-local counters into the facade
    registry as ``shard_*{shard=i}`` series (fleet aggregation)."""
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry()
    relation = make_relation(80, "small", seed=11)
    engine = ShardedDualIndex.build(relation, SLOPES, shards=4, registry=reg)
    try:
        engine.query(HalfPlaneQuery("EXIST", 0.5, 2.0, ">="))
        counters = reg.collect()["counters"]
        per_shard = {
            key: val for key, val in counters.items()
            if key.startswith("shard_") and "shard=" in key
        }
        shards_seen = {
            key.rsplit("shard=", 1)[1].rstrip("}") for key in per_shard
        }
        assert shards_seen == {"0", "1", "2", "3"}
        pages = [
            val for key, val in per_shard.items()
            if key.startswith("shard_pages{")
        ]
        assert len(pages) == 4 and all(v > 0 for v in pages)
        # the batch path drains through the same funnel
        before = sum(pages)
        engine.query_batch(_random_queries(random.Random(5), 3))
        after = sum(
            val for key, val in reg.collect()["counters"].items()
            if key.startswith("shard_pages{")
        )
        assert after > before
    finally:
        engine.close()


def test_shard_drain_resets_shard_locals():
    """Draining moves counts — a second drain must not double them."""
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry()
    relation = make_relation(60, "small", seed=7)
    engine = ShardedDualIndex.build(relation, SLOPES, shards=2, registry=reg)
    try:
        engine.query(HalfPlaneQuery("EXIST", 0.0, 1.0, ">="))
        snapshot = dict(reg.collect()["counters"])
        engine._drain_shard_metrics()
        assert reg.collect()["counters"] == snapshot
    finally:
        engine.close()
