"""Vectorized/parallel key computation is bit-identical to the scalar path."""

from __future__ import annotations

import random

import pytest

from repro.core import SlopeSet
from repro.core.dual_index import _SIDES, DualIndex
from repro.shard.keys import (
    MIN_PARALLEL_TUPLES,
    compute_keys_batch,
    needed_slopes,
    parallel_compute_keys,
)
from repro.workloads import make_relation
from tests.conftest import random_mixed_relation


def _scalar_keys(relation, slopes):
    index = DualIndex(slopes=slopes)
    return {
        tid: (index.compute_keys(t) if t.is_satisfiable() else None)
        for tid, t in relation
    }


def _assert_same_keys(got, want):
    assert got.keys() == want.keys()
    for tid, keys in want.items():
        if keys is None:
            assert got[tid] is None
            continue
        assert got[tid].top == keys.top, tid
        assert got[tid].bot == keys.bot, tid
        assert got[tid].assign_top == keys.assign_top, tid
        assert got[tid].assign_bot == keys.assign_bot, tid


def test_needed_slopes_covers_trees_and_strips():
    slopes = SlopeSet.uniform_angles(4)
    probe = needed_slopes(slopes)
    assert probe[: len(slopes)] == list(slopes)
    for i in range(len(slopes)):
        for side in _SIDES:
            strip = slopes.strip(i, side)
            if strip is not None:
                assert strip[1] in probe
    assert len(probe) == len(set(probe))


@pytest.mark.parametrize("size", ["small", "medium"])
def test_batch_keys_match_scalar(size):
    relation = make_relation(160, size, seed=31)
    slopes = SlopeSet.uniform_angles(3)
    _assert_same_keys(
        dict(compute_keys_batch(list(relation), slopes)),
        _scalar_keys(relation, slopes),
    )


def test_batch_keys_match_scalar_with_unbounded_and_unsat():
    rng = random.Random(77)
    relation = random_mixed_relation(rng, 60, unbounded_fraction=0.4)
    slopes = SlopeSet([-2.0, -0.5, 0.5, 2.0])
    _assert_same_keys(
        dict(compute_keys_batch(list(relation), slopes)),
        _scalar_keys(relation, slopes),
    )


def test_parallel_keys_match_serial_even_when_pool_forced():
    relation = make_relation(max(96, MIN_PARALLEL_TUPLES + 8), "small", seed=9)
    slopes = SlopeSet.uniform_angles(3)
    serial = dict(compute_keys_batch(list(relation), slopes))
    auto = dict(parallel_compute_keys(relation, slopes, workers=4))
    _assert_same_keys(auto, serial)
    pooled = dict(
        parallel_compute_keys(relation, slopes, workers=3, use_pool=True)
    )
    _assert_same_keys(pooled, serial)


def test_parallel_keys_small_input_short_circuits():
    relation = make_relation(MIN_PARALLEL_TUPLES // 2, "small", seed=3)
    slopes = SlopeSet.uniform_angles(3)
    _assert_same_keys(
        dict(parallel_compute_keys(relation, slopes, workers=8)),
        _scalar_keys(relation, slopes),
    )


def test_pooled_build_merges_worker_series_into_global_registry():
    """Each build worker ships a registry snapshot back with its chunk;
    the parent merges them as ``build_worker_*{worker=j}`` series."""
    from repro.obs.metrics import get_registry

    registry = get_registry()
    registry.reset()
    try:
        relation = make_relation(
            max(96, MIN_PARALLEL_TUPLES + 8), "small", seed=9
        )
        parallel_compute_keys(
            relation, SlopeSet.uniform_angles(3), workers=2, use_pool=True
        )
        counters = registry.collect()["counters"]
        tuple_series = {
            key: val for key, val in counters.items()
            if key.startswith("build_worker_tuples{")
        }
        assert tuple_series, counters
        assert sum(tuple_series.values()) == len(relation)
        workers = {
            key.rsplit("worker=", 1)[1].rstrip("}") for key in tuple_series
        }
        assert workers == {"0", "1"}
        hists = registry.collect()["histograms"]
        assert any(
            key.startswith("build_worker_seconds{") for key in hists
        )
    finally:
        registry.reset()


def test_serial_build_leaves_global_registry_untouched():
    from repro.obs.metrics import get_registry

    registry = get_registry()
    registry.reset()
    try:
        relation = make_relation(MIN_PARALLEL_TUPLES // 2, "small", seed=3)
        parallel_compute_keys(relation, SlopeSet.uniform_angles(3), workers=4)
        assert not any(
            key.startswith("build_worker_")
            for key in registry.collect()["counters"]
        )
    finally:
        registry.reset()
