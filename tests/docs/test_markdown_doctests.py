"""Run the doctests embedded in docs/*.md (mirrors the CI docs job,
which executes ``python -m doctest docs/*.md`` with PYTHONPATH=src)."""

import doctest
import glob
import os

import pytest

DOCS = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "..", "docs")
)
PAGES = sorted(glob.glob(os.path.join(DOCS, "*.md")))


def test_documented_pages_exist():
    names = {os.path.basename(p) for p in PAGES}
    assert {"ARCHITECTURE.md", "api.md"} <= names


@pytest.mark.parametrize("path", PAGES, ids=[os.path.basename(p) for p in PAGES])
def test_markdown_doctests(path):
    result = doctest.testfile(path, module_relative=False)
    assert result.failed == 0, f"{path}: {result.failed} doctest failures"
    assert result.attempted > 0, f"{path} has no runnable examples"
