"""CLI tests."""

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "repro" in out
    assert "figures 8a 8b 9a 9b 10" in out


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0


def test_query_from_file(tmp_path, capsys):
    tuples = tmp_path / "tuples.txt"
    tuples.write_text(
        "# two parcels and an unbounded plain\n"
        "x >= 0 and x <= 2 and y >= 0 and y <= 2\n"
        "x >= 5 and x <= 7 and y >= 5 and y <= 7\n"
        "y <= -10\n"
    )
    code = main(
        [
            "query",
            "--tuples", str(tuples),
            "--type", "EXIST",
            "--slope", "0.0",
            "--intercept", "4.0",
            "--theta", "GE",
            "--slopes=-1,0,1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "answers  : 1 of 3 tuples" in out
    assert "tuple 1" in out


def test_query_all_from_file(tmp_path, capsys):
    tuples = tmp_path / "tuples.txt"
    tuples.write_text("y <= -10\nx >= 0 and x <= 1 and y >= 0 and y <= 1\n")
    code = main(
        [
            "query",
            "--tuples", str(tuples),
            "--type", "ALL",
            "--slope", "0.3",
            "--intercept", "-5.0",
            "--theta", "LE",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "technique:" in out


def test_query_empty_file(tmp_path, capsys):
    tuples = tmp_path / "empty.txt"
    tuples.write_text("# nothing here\n")
    assert main(
        [
            "query",
            "--tuples", str(tuples),
            "--type", "EXIST",
            "--slope", "0",
            "--intercept", "0",
        ]
    ) == 1


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-command"])
