"""CLI tests."""

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "repro" in out
    assert "figures 8a 8b 9a 9b 10" in out


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0


def test_query_from_file(tmp_path, capsys):
    tuples = tmp_path / "tuples.txt"
    tuples.write_text(
        "# two parcels and an unbounded plain\n"
        "x >= 0 and x <= 2 and y >= 0 and y <= 2\n"
        "x >= 5 and x <= 7 and y >= 5 and y <= 7\n"
        "y <= -10\n"
    )
    code = main(
        [
            "query",
            "--tuples", str(tuples),
            "--type", "EXIST",
            "--slope", "0.0",
            "--intercept", "4.0",
            "--theta", "GE",
            "--slopes=-1,0,1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "answers  : 1 of 3 tuples" in out
    assert "tuple 1" in out


def test_query_all_from_file(tmp_path, capsys):
    tuples = tmp_path / "tuples.txt"
    tuples.write_text("y <= -10\nx >= 0 and x <= 1 and y >= 0 and y <= 1\n")
    code = main(
        [
            "query",
            "--tuples", str(tuples),
            "--type", "ALL",
            "--slope", "0.3",
            "--intercept", "-5.0",
            "--theta", "LE",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "technique:" in out


def test_query_empty_file(tmp_path, capsys):
    tuples = tmp_path / "empty.txt"
    tuples.write_text("# nothing here\n")
    assert main(
        [
            "query",
            "--tuples", str(tuples),
            "--type", "EXIST",
            "--slope", "0",
            "--intercept", "0",
        ]
    ) == 1


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-command"])


TRACE_TUPLES = (
    "x >= 0 and x <= 2 and y >= 0 and y <= 2\n"
    "x >= 5 and x <= 7 and y >= 5 and y <= 7\n"
)


def test_trace_prints_span_tree(tmp_path, capsys):
    tuples = tmp_path / "tuples.txt"
    tuples.write_text(TRACE_TUPLES)
    code = main(
        [
            "trace",
            "--tuples", str(tuples),
            "--type", "EXIST",
            "--slope", "1",
            "--intercept", "0",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    # span tree with per-phase I/O and timings
    assert "query" in out
    assert "plan" in out
    assert "fetch" in out or "sweep" in out
    assert "ms" in out and "pages" in out and "physical" in out
    assert "technique:" in out


def test_trace_json(tmp_path, capsys):
    import json

    tuples = tmp_path / "tuples.txt"
    tuples.write_text(TRACE_TUPLES)
    code = main(
        [
            "trace",
            "--tuples", str(tuples),
            "--type", "ALL",
            "--slope", "0.5",
            "--intercept", "-1",
            "--theta", "LE",
            "--json",
        ]
    )
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["children"][0]["name"] == "query"
    assert "logical_reads" in doc["io"]


def test_trace_leaves_tracing_disabled(tmp_path, capsys):
    from repro.obs import trace as obs

    tuples = tmp_path / "tuples.txt"
    tuples.write_text(TRACE_TUPLES)
    main(["trace", "--tuples", str(tuples), "--type", "EXIST",
          "--slope", "1", "--intercept", "0"])
    capsys.readouterr()
    assert obs.current() is None


def test_stats_emits_registry_json(capsys):
    import json

    code = main(["stats", "--n", "60", "--k", "2", "--queries", "1"])
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert set(doc) == {"counters", "gauges", "histograms"}
    assert any(k.startswith("smoke_index_pages") for k in doc["counters"])


def test_smoke_gate_round_trip(tmp_path, capsys):
    out = tmp_path / "BENCH_smoke.json"
    baseline = tmp_path / "baseline.json"
    assert main(
        ["smoke", "--out", str(out), "--baseline", str(baseline),
         "--update-baseline"]
    ) == 0
    assert main(
        ["smoke", "--out", str(out), "--baseline", str(baseline)]
    ) == 0
    capsys.readouterr()

    import json

    doc = json.loads(baseline.read_text())
    key = next(iter(doc["counters"]))
    doc["counters"][key] -= 1
    baseline.write_text(json.dumps(doc))
    assert main(
        ["smoke", "--out", str(out), "--baseline", str(baseline)]
    ) == 1
    assert "exceeds baseline" in capsys.readouterr().err


def test_smoke_missing_baseline(tmp_path, capsys):
    assert main(
        ["smoke", "--out", str(tmp_path / "o.json"),
         "--baseline", str(tmp_path / "nope.json")]
    ) == 2
    assert "--update-baseline" in capsys.readouterr().err


def test_explain_workload_smoke(capsys):
    assert main(["explain", "--workload", "smoke", "--count", "1"]) == 0
    out = capsys.readouterr().out
    assert "phase attribution" in out
    assert "(checked)" in out
    assert "per-index work" in out


def test_explain_sharded_shows_per_shard_rows(capsys):
    assert main(
        ["explain", "--workload", "smoke", "--count", "1", "--shards", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "shard0" in out and "shard1" in out
    assert "(checked)" in out


def test_explain_from_files_with_artifacts(tmp_path, capsys):
    import json

    from repro.obs.export import validate_chrome_trace

    tuples = tmp_path / "tuples.txt"
    tuples.write_text(TRACE_TUPLES)
    queries = tmp_path / "queries.txt"
    queries.write_text("EXIST 0.5 2.0 GE\nALL 0.5 -1.0 LE\n")
    chrome = tmp_path / "trace.json"
    events = tmp_path / "events.jsonl"
    code = main(
        [
            "explain",
            "--tuples", str(tuples),
            "--queries", str(queries),
            "--chrome-out", str(chrome),
            "--events-out", str(events),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "wrote chrome trace" in out
    doc = json.loads(chrome.read_text())
    assert validate_chrome_trace(doc) == []
    from repro.obs.events import parse_jsonl

    assert parse_jsonl(events.read_text())


def test_explain_requires_exactly_one_source(tmp_path, capsys):
    assert main(["explain"]) == 2
    tuples = tmp_path / "tuples.txt"
    tuples.write_text(TRACE_TUPLES)
    assert main(
        ["explain", "--workload", "smoke", "--tuples", str(tuples)]
    ) == 2
    assert main(["explain", "--tuples", str(tuples)]) == 2
    err = capsys.readouterr().err
    assert "exactly one" in err and "--queries" in err


def test_stats_prom_format(capsys):
    assert main(["stats", "--format", "prom"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE" in out and "# HELP" in out
    assert 'smoke_total_pages{structure="dual"' in out


def test_bench_diff_subcommand_exit_codes(tmp_path, capsys):
    import json

    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps({"counters": {"pages": 10}}))
    cur.write_text(json.dumps({"counters": {"pages": 10}}))
    assert main(["bench-diff", str(base), str(cur)]) == 0
    cur.write_text(json.dumps({"counters": {"pages": 12}}))
    assert main(["bench-diff", str(base), str(cur)]) == 1
    assert main(
        ["bench-diff", str(base), str(cur), "--threshold", "0.5"]
    ) == 0
    capsys.readouterr()


def test_save_open_round_trip(tmp_path, capsys):
    tuples = tmp_path / "tuples.txt"
    tuples.write_text(
        "x >= 0 and x <= 2 and y >= 0 and y <= 2\n"
        "x >= 5 and x <= 7 and y >= 5 and y <= 7\n"
    )
    data_dir = tmp_path / "engine"
    assert main(
        ["save", "--tuples", str(tuples), "--data-dir", str(data_dir),
         "--slopes=-1,0,1"]
    ) == 0
    out = capsys.readouterr().out
    assert "saved planner engine (2 tuples)" in out

    queries = tmp_path / "queries.txt"
    queries.write_text("EXIST 0.0 4.0 GE\n")
    assert main(
        ["open", "--data-dir", str(data_dir), "--queries", str(queries)]
    ) == 0
    out = capsys.readouterr().out
    assert "kind" in out and "planner" in out
    assert "EXIST" in out  # query answers printed


def test_save_open_sharded_json(tmp_path, capsys):
    import json

    tuples = tmp_path / "tuples.txt"
    tuples.write_text(
        "x >= 0 and x <= 1 and y >= 0 and y <= 1\n"
        "x >= 2 and x <= 3 and y >= 2 and y <= 3\n"
        "x >= 4 and x <= 5 and y >= 4 and y <= 5\n"
    )
    data_dir = tmp_path / "fleet"
    assert main(
        ["save", "--tuples", str(tuples), "--data-dir", str(data_dir),
         "--shards", "2"]
    ) == 0
    capsys.readouterr()
    assert main(["open", "--data-dir", str(data_dir), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "sharded"
    assert doc["shards"] == 2
    assert doc["size"] == 3


def test_batch_from_data_dir(tmp_path, capsys):
    tuples = tmp_path / "tuples.txt"
    tuples.write_text("x >= 0 and x <= 2 and y >= 0 and y <= 2\n")
    queries = tmp_path / "queries.txt"
    queries.write_text("EXIST 0.0 4.0 GE\nALL 0.0 -4.0 LE\n")
    data_dir = tmp_path / "engine"
    assert main(
        ["save", "--tuples", str(tuples), "--data-dir", str(data_dir)]
    ) == 0
    capsys.readouterr()
    # no --tuples: the engine is opened from disk instead of rebuilt
    assert main(
        ["batch", "--data-dir", str(data_dir), "--queries", str(queries)]
    ) == 0
    assert "batch    : 2 queries" in capsys.readouterr().out

    assert main(["batch", "--queries", str(queries)]) == 2
    assert "--data-dir" in capsys.readouterr().err
