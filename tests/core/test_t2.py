"""Technique T2 tests: handicap search correctness and no-duplicate
guarantee."""


import pytest

from repro.constraints import GeneralizedRelation, Theta
from repro.core import (
    ALL,
    EXIST,
    DualIndex,
    DualIndexPlanner,
    HalfPlaneQuery,
    SlopeSet,
    t2_candidates,
)
from repro.errors import QueryError
from repro.geometry.predicates import evaluate_relation
from repro.storage import KeyCodec, Pager
from tests.conftest import random_bounded_tuple, random_mixed_relation

SLOPES = SlopeSet([-1.5, -0.4, 0.4, 1.5])


@pytest.fixture
def index(rng):
    relation = GeneralizedRelation(
        [random_bounded_tuple(rng) for _ in range(120)]
    )
    idx = DualIndex(Pager(), SLOPES, KeyCodec(8))
    idx.build(relation)
    return idx, relation


def random_interior_query(rng, qtype=None, theta=None):
    if qtype is None:
        qtype = rng.choice([ALL, EXIST])
    if theta is None:
        theta = rng.choice([Theta.GE, Theta.LE])
    while True:
        a = rng.uniform(SLOPES[0], SLOPES[-1])
        if SLOPES.index_of(a) is None and SLOPES[0] < a < SLOPES[-1]:
            return HalfPlaneQuery(qtype, a, rng.uniform(-70, 70), theta)


class TestTrace:
    def test_candidates_superset_of_answer(self, index, rng):
        idx, relation = index
        for _ in range(100):
            q = random_interior_query(rng)
            trace = t2_candidates(idx, q)
            got = {idx.tid_of[rid] for rid in trace.candidates}
            want = evaluate_relation(
                relation, q.query_type, q.slope_2d, q.intercept, q.theta
            )
            assert want <= got, q

    def test_anchor_is_nearest_slope(self, index, rng):
        idx, _ = index
        for _ in range(40):
            q = random_interior_query(rng)
            trace = t2_candidates(idx, q)
            nearest = idx.slopes.nearest(q.slope_2d)
            assert trace.anchor_index == nearest

    def test_wrap_case_rejected(self, index):
        idx, _ = index
        with pytest.raises(QueryError):
            t2_candidates(idx, HalfPlaneQuery(EXIST, 99.0, 0.0, Theta.GE))

    def test_single_tree_two_sweeps_disjoint(self, index, rng):
        """The defining T2 property: the two sweeps never hand the same
        leaf entry twice (no duplicates by construction)."""
        idx, _ = index
        for _ in range(40):
            q = random_interior_query(rng)
            trace = t2_candidates(idx, q)
            # candidates is a set by implementation; verify against the
            # total entry count the two sweeps could have produced:
            trees, _up = idx.trees_for(q.query_type, q.theta)
            tree = trees[trace.anchor_index]
            all_entries = list(tree.items())
            assert len(trace.candidates) <= len(all_entries)

    def test_empty_index(self):
        idx = DualIndex(Pager(), SLOPES, KeyCodec(8))
        idx.build(GeneralizedRelation())
        trace = t2_candidates(idx, HalfPlaneQuery(EXIST, 0.9, 0.0, Theta.GE))
        assert trace.candidates == set()

    def test_query_above_all_keys_is_cheap_and_empty(self, index):
        """A query above every key sweeps one leaf upward; the secondary
        sweep may fire (the last leaf's handicap covers an unbounded key
        range) but the refined answer is empty."""
        idx, _ = index
        q = HalfPlaneQuery(EXIST, 0.9, 1e8, Theta.GE)
        trace = t2_candidates(idx, q)
        assert trace.primary_leaves == 1
        planner = DualIndexPlanner(idx)
        assert planner.query(q).ids == set()


class TestAllFourForms:
    @pytest.mark.parametrize(
        "qtype,theta",
        [
            (EXIST, Theta.GE),
            (EXIST, Theta.LE),
            (ALL, Theta.GE),
            (ALL, Theta.LE),
        ],
    )
    def test_form_matches_oracle(self, index, rng, qtype, theta):
        idx, relation = index
        planner = DualIndexPlanner(idx, technique="T2")
        for _ in range(40):
            q = random_interior_query(rng, qtype, theta)
            res = planner.query(q)
            assert res.technique == "T2"
            want = evaluate_relation(
                relation, qtype, q.slope_2d, q.intercept, theta
            )
            assert res.ids == want, q


class TestQuantizedKeys:
    def test_f32_index_still_exact(self, rng):
        relation = GeneralizedRelation(
            [random_bounded_tuple(rng) for _ in range(100)]
        )
        planner = DualIndexPlanner.build(relation, SLOPES, key_bytes=4)
        for _ in range(80):
            q = random_interior_query(rng)
            res = planner.query(q)
            want = evaluate_relation(
                relation, q.query_type, q.slope_2d, q.intercept, q.theta
            )
            assert res.ids == want, q


class TestUnboundedObjects:
    def test_mixed_relation(self, rng):
        relation = random_mixed_relation(rng, 50, unbounded_fraction=0.4)
        planner = DualIndexPlanner.build(relation, SLOPES, key_bytes=4)
        for _ in range(80):
            q = random_interior_query(rng)
            res = planner.query(q)
            want = evaluate_relation(
                relation, q.query_type, q.slope_2d, q.intercept, q.theta
            )
            assert res.ids == want, q

    def test_pure_halfplane_relation(self):
        from repro.constraints import parse_tuple

        relation = GeneralizedRelation(
            [
                parse_tuple("y <= 0"),
                parse_tuple("y >= 10"),
                parse_tuple("y <= x + 1 and y >= x - 1"),
            ]
        )
        planner = DualIndexPlanner.build(relation, SLOPES, key_bytes=4)
        res = planner.exist(0.9, 5.0, Theta.GE)
        # y>=10 and the slab (slope 1 > 0.9) reach y >= 0.9x+5; y<=0 does
        # for x negative enough... check against the oracle instead:
        want = evaluate_relation(relation, EXIST, 0.9, 5.0, Theta.GE)
        assert res.ids == want
