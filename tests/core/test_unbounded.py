"""Finite/infinite object handling: only the dual index supports both.

Reproduces the paper's motivating argument (Section 1, Figure 1): the
R+-tree cannot store unbounded objects; clipping them to a window gives
wrong answers; the dual index handles them natively via ±∞ TOP/BOT keys.
"""


import pytest

from repro.constraints import GeneralizedRelation, Theta, parse_tuple
from repro.core import ALL, EXIST, DualIndexPlanner, HalfPlaneQuery, SlopeSet
from repro.errors import GeometryError
from repro.geometry.predicates import evaluate_relation
from repro.rtree.planner import RTreePlanner
from repro.workloads import make_relation
from tests.conftest import random_mixed_relation


def test_rplus_rejects_unbounded():
    relation = GeneralizedRelation([parse_tuple("y <= 0")])
    with pytest.raises(GeometryError):
        RTreePlanner.build(relation)


def test_dual_index_accepts_unbounded(rng):
    relation = random_mixed_relation(rng, 40, unbounded_fraction=0.5)
    planner = DualIndexPlanner.build(relation, SlopeSet.uniform_angles(3))
    assert planner.index.size == 40


def test_window_clipping_gives_wrong_answers():
    """Figure 1 as an end-to-end experiment: index the clipped tuple in
    an R+-tree, the true tuple in the dual index — only the dual index
    finds the intersection that happens outside the window."""
    wedge = parse_tuple("y <= 0.1x - 2 and y >= 0.05x - 4")
    window = parse_tuple("x >= -50 and x <= 50 and y >= -50 and y <= 50")
    clipped = wedge.conjoin(window)

    dual = DualIndexPlanner.build(
        GeneralizedRelation([wedge]), SlopeSet([-1.0, 0.0, 1.0])
    )
    rplus = RTreePlanner.build(GeneralizedRelation([clipped]))

    # q ≡ y >= 0.05x + 2 meets the wedge only at x >= 80.
    assert dual.exist(0.05, 2.0, Theta.GE).ids == {0}
    assert rplus.exist(0.05, 2.0, Theta.GE).ids == set()


def test_mixed_workload_all_queries(rng):
    relation = random_mixed_relation(rng, 60, unbounded_fraction=0.3)
    slopes = SlopeSet.uniform_angles(4)
    planner = DualIndexPlanner.build(relation, slopes, key_bytes=4)
    for _ in range(60):
        qtype = rng.choice([ALL, EXIST])
        theta = rng.choice([Theta.GE, Theta.LE])
        a = rng.uniform(slopes[0] * 1.2, slopes[-1] * 1.2)
        b = rng.uniform(-80, 80)
        res = planner.query(HalfPlaneQuery(qtype, a, b, theta))
        want = evaluate_relation(relation, qtype, a, b, theta)
        assert res.ids == want


def test_workload_generator_unbounded_fraction():
    relation = make_relation(40, "small", seed=3, unbounded_fraction=0.5)
    unbounded = sum(
        1 for _, t in relation if not t.extension().is_bounded
    )
    assert 5 <= unbounded <= 35


def test_halfplane_only_relation_queries():
    relation = GeneralizedRelation(
        [
            parse_tuple("y >= 3"),
            parse_tuple("y <= -3"),
            parse_tuple("y >= -1 and y <= 1"),
        ]
    )
    planner = DualIndexPlanner.build(relation, SlopeSet([-0.5, 0.0, 0.5]))
    # ALL(y >= 2): only tuple 0 is contained.
    assert planner.all(0.0, 2.0, Theta.GE).ids == {0}
    # EXIST(y >= 2): tuple 0 only (slab tops out at 1).
    assert planner.exist(0.0, 2.0, Theta.GE).ids == {0}
    # EXIST(y <= 0): slab and lower half-plane.
    assert planner.exist(0.0, 0.0, Theta.LE).ids == {1, 2}
    # ALL(y <= 5): nothing unbounded above... tuple 1 and slab qualify.
    assert planner.all(0.0, 5.0, Theta.LE).ids == {1, 2}
