"""DualIndex structure tests: build, keys, handicaps, space."""

import math

import pytest

from repro.constraints import GeneralizedRelation, parse_tuple
from repro.core import DualIndex, SlopeSet
from repro.core.dual_index import (
    AUX_HIGH_NEXT,
    AUX_HIGH_PREV,
    AUX_LOW_NEXT,
    AUX_LOW_PREV,
    NO_HIGH,
    NO_LOW,
)
from repro.errors import IndexError_
from repro.geometry import bot, strip_bot_min, strip_top_max, top
from repro.storage import KeyCodec, Pager
from tests.conftest import random_bounded_tuple


@pytest.fixture
def small_relation(rng):
    return GeneralizedRelation([random_bounded_tuple(rng) for _ in range(60)])


@pytest.fixture
def index(small_relation):
    idx = DualIndex(
        Pager(), SlopeSet([-1.0, 0.0, 1.0]), KeyCodec(8)
    )
    idx.build(small_relation)
    return idx


class TestBuild:
    def test_tree_contents_match_geometry(self, index, small_relation):
        for i, slope in enumerate(index.slopes):
            up_keys = sorted(k for k, _ in index.up[i].items())
            want = sorted(
                top(t.extension(), slope) for _, t in small_relation
            )
            assert up_keys == pytest.approx(want)
            down_keys = sorted(k for k, _ in index.down[i].items())
            want = sorted(
                bot(t.extension(), slope) for _, t in small_relation
            )
            assert down_keys == pytest.approx(want)

    def test_rids_resolve_to_tuples(self, index, small_relation):
        for _k, rid in index.up[0].items():
            tid, t = index.fetch_tuple(rid)
            assert small_relation.get(tid) == t

    def test_skips_unsatisfiable(self):
        r = GeneralizedRelation(
            [
                parse_tuple("x >= 0 and x <= 1 and y >= 0 and y <= 1"),
                parse_tuple("x <= 0 and x >= 1", dimension=2),
            ]
        )
        idx = DualIndex(Pager(), SlopeSet([0.0]))
        idx.build(r)
        assert idx.size == 1
        assert idx.skipped == [1]

    def test_build_twice_rejected(self, index, small_relation):
        with pytest.raises(IndexError_):
            index.build(small_relation)

    def test_3d_relation_rejected(self):
        r = GeneralizedRelation([parse_tuple("x1 + x2 + x3 <= 1")])
        idx = DualIndex(Pager(), SlopeSet([0.0]))
        with pytest.raises(IndexError_):
            idx.build(r)

    def test_unbounded_tuples_indexable(self):
        r = GeneralizedRelation(
            [parse_tuple("y <= 0"), parse_tuple("y >= x and y >= -x")]
        )
        idx = DualIndex(Pager(), SlopeSet([-0.5, 0.5]))
        idx.build(r)
        assert idx.size == 2
        keys = [k for k, _ in idx.up[0].items()]
        assert math.inf in keys  # the cone's TOP at slope -0.5


class TestEntryKeys:
    def test_compute_keys_values(self, rng):
        t = random_bounded_tuple(rng)
        idx = DualIndex(Pager(), SlopeSet([-1.0, 0.0, 1.0]))
        keys = idx.compute_keys(t)
        poly = t.extension()
        for i, slope in enumerate(idx.slopes):
            assert keys.top[i] == pytest.approx(top(poly, slope))
            assert keys.bot[i] == pytest.approx(bot(poly, slope))
        # strips: slope 0 has neighbours both sides at ±0.5 midpoints
        assert keys.assign_top[1]["next"] == pytest.approx(
            strip_top_max(poly, 0.0, 0.5)
        )
        assert keys.assign_top[1]["prev"] == pytest.approx(
            strip_top_max(poly, 0.0, -0.5)
        )
        assert keys.assign_bot[1]["next"] == pytest.approx(
            strip_bot_min(poly, 0.0, 0.5)
        )
        # edge slopes have one-sided strips
        assert keys.assign_top[0]["prev"] is None
        assert keys.assign_top[2]["next"] is None

    def test_empty_tuple_rejected(self):
        idx = DualIndex(Pager(), SlopeSet([0.0]))
        with pytest.raises(IndexError_):
            idx.compute_keys(parse_tuple("x <= 0 and x >= 1", dimension=2))


class TestHandicapAggregates:
    def test_aggregates_cover_assignments(self, index, small_relation):
        """Every tuple's key must be bounded by the aggregate of the leaf
        owning its assignment key — the T2 correctness invariant."""
        for i in range(len(index.slopes)):
            for tree, key_of in (
                (index.up[i], lambda p, s=index.slopes[i]: top(p, s)),
                (index.down[i], lambda p, s=index.slopes[i]: bot(p, s)),
            ):
                # leaf boundaries
                pids = list(tree.leaf_pids())
                leaves = [tree.read_leaf(pid) for pid in pids]
                boundaries = [leaf.keys[0] for leaf in leaves]

                def owner(value):
                    lo, hi = 0, len(boundaries)
                    while lo < hi:
                        mid = (lo + hi) // 2
                        if boundaries[mid] <= value:
                            lo = mid + 1
                        else:
                            hi = mid
                    return max(0, lo - 1)

                for _tid, t in small_relation:
                    poly = t.extension()
                    value = tree.quantize(key_of(poly))
                    for side, slot_low, slot_high in (
                        ("prev", AUX_LOW_PREV, AUX_HIGH_PREV),
                        ("next", AUX_LOW_NEXT, AUX_HIGH_NEXT),
                    ):
                        strip = index.slopes.strip(i, side)
                        if strip is None:
                            continue
                        a_top = tree.quantize(strip_top_max(poly, *strip))
                        a_bot = tree.quantize(strip_bot_min(poly, *strip))
                        leaf_low = leaves[owner(a_top)]
                        assert leaf_low.aux[slot_low] <= value
                        leaf_high = leaves[owner(a_bot)]
                        assert leaf_high.aux[slot_high] >= value

    def test_edge_slots_keep_sentinels(self, index):
        # slope 0 (the minimum) has no 'prev' strip: its prev slots stay
        # at the sentinels in every leaf.
        tree = index.up[0]
        for pid in tree.leaf_pids():
            leaf = tree.read_leaf(pid)
            assert leaf.aux[AUX_LOW_PREV] == NO_LOW
            assert leaf.aux[AUX_HIGH_PREV] == NO_HIGH
            assert leaf.handicaps_valid


class TestSpace:
    def test_space_breakdown(self, index):
        space = index.space()
        assert space.tree_pages == sum(
            t.page_count for t in index.up + index.down
        )
        assert space.directory_pages == 0  # static build
        assert space.heap_pages == index.heap.page_count
        assert space.total_pages == (
            space.tree_pages + space.heap_pages
        )

    def test_dynamic_mode_has_directories(self, small_relation):
        idx = DualIndex(
            Pager(), SlopeSet([-1.0, 0.0, 1.0]), KeyCodec(8), dynamic=True
        )
        idx.build(small_relation)
        assert idx.space().directory_pages > 0

    def test_trees_scale_with_k(self, small_relation):
        pages = []
        for k in (1, 2, 4):
            idx = DualIndex(Pager(), SlopeSet(list(range(k))), KeyCodec(8))
            idx.build(small_relation)
            pages.append(idx.space().tree_pages)
        assert pages[1] == 2 * pages[0]
        assert pages[2] == 4 * pages[0]


class TestRouting:
    def test_trees_for(self, index):
        from repro.constraints.theta import Theta

        assert index.trees_for("ALL", Theta.GE) == (index.down, True)
        assert index.trees_for("ALL", Theta.LE) == (index.up, False)
        assert index.trees_for("EXIST", Theta.GE) == (index.up, True)
        assert index.trees_for("EXIST", Theta.LE) == (index.down, False)

    def test_bad_type(self, index):
        from repro.constraints.theta import Theta
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            index.trees_for("NONE", Theta.GE)
