"""KD-tree and Delaunay/Voronoi substrate tests."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.proximity import KDTree, delaunay_triangles, voronoi_neighbors
from repro.errors import GeometryError

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestKDTree:
    def test_single_point(self):
        tree = KDTree([(1.0, 2.0)])
        assert tree.nearest((0.0, 0.0)) == (0, pytest.approx(math.hypot(1, 2)))

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            KDTree([])

    def test_dimension_checked(self):
        tree = KDTree([(1.0, 2.0)])
        with pytest.raises(GeometryError):
            tree.nearest((1.0,))

    @settings(max_examples=60, deadline=None)
    @given(
        points=st.lists(st.tuples(coord, coord), min_size=1, max_size=40, unique=True),
        query=st.tuples(coord, coord),
    )
    def test_nearest_matches_bruteforce(self, points, query):
        tree = KDTree(points)
        index, dist = tree.nearest(query)
        best = min(
            math.dist(p, query) for p in points
        )
        assert dist == pytest.approx(best, abs=1e-9)
        assert math.dist(points[index], query) == pytest.approx(best, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        points=st.lists(
            st.tuples(coord, coord, coord), min_size=1, max_size=30, unique=True
        ),
        query=st.tuples(coord, coord, coord),
    )
    def test_3d_nearest(self, points, query):
        tree = KDTree(points)
        _index, dist = tree.nearest(query)
        assert dist == pytest.approx(
            min(math.dist(p, query) for p in points), abs=1e-9
        )

    def test_within(self):
        tree = KDTree([(0.0, 0.0), (3.0, 0.0), (0.0, 5.0)])
        assert tree.within((0.0, 0.0), 3.5) == [0, 1]
        assert tree.within((0.0, 0.0), 10.0) == [0, 1, 2]
        assert tree.within((100.0, 100.0), 1.0) == []


class TestDelaunay:
    def test_triangle(self):
        tris = delaunay_triangles([(0, 0), (1, 0), (0, 1)])
        assert tris == [(0, 1, 2)]

    def test_square_two_triangles(self):
        tris = delaunay_triangles([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert len(tris) == 2

    def test_collinear_no_triangles(self):
        assert delaunay_triangles([(0, 0), (1, 1), (2, 2)]) == []

    def test_delaunay_empty_circumcircle_property(self):
        rng = random.Random(4)
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(25)]
        tris = delaunay_triangles(points)
        assert tris, "triangulation should exist"
        for a, b, c in tris:
            cx, cy, r2 = _circumcircle(points[a], points[b], points[c])
            for i, p in enumerate(points):
                if i in (a, b, c):
                    continue
                d2 = (p[0] - cx) ** 2 + (p[1] - cy) ** 2
                assert d2 >= r2 - 1e-6, "non-empty circumcircle"

    def test_triangulation_covers_hull(self):
        rng = random.Random(5)
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(20)]
        tris = delaunay_triangles(points)
        # Euler: triangles = 2n - 2 - hull_size for a proper triangulation
        from repro.geometry.hull import convex_hull_2d

        hull = convex_hull_2d(points)
        assert len(tris) == 2 * len(points) - 2 - len(hull)


def _circumcircle(a, b, c):
    ax, ay = a
    bx, by = b
    cx, cy = c
    d = 2 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
    ux = (
        (ax * ax + ay * ay) * (by - cy)
        + (bx * bx + by * by) * (cy - ay)
        + (cx * cx + cy * cy) * (ay - by)
    ) / d
    uy = (
        (ax * ax + ay * ay) * (cx - bx)
        + (bx * bx + by * by) * (ax - cx)
        + (cx * cx + cy * cy) * (bx - ax)
    ) / d
    r2 = (ax - ux) ** 2 + (ay - uy) ** 2
    return ux, uy, r2


class TestVoronoiNeighbors:
    def test_1d_chain(self):
        adjacency = voronoi_neighbors([(0.0,), (5.0,), (2.0,)])
        assert adjacency[0] == {2}
        assert adjacency[2] == {0, 1}
        assert adjacency[1] == {2}

    def test_2d_grid_neighbours(self):
        # unit square corners: each corner neighbours the two adjacent
        # corners; diagonals depend on the triangulation (one diagonal).
        points = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
        adjacency = voronoi_neighbors(points)
        for i in range(4):
            assert len(adjacency[i]) >= 2

    def test_collinear_2d(self):
        adjacency = voronoi_neighbors([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)])
        assert adjacency[1] == {0, 2}

    def test_high_dim_all_pairs(self):
        adjacency = voronoi_neighbors([(0, 0, 0), (1, 0, 0), (0, 1, 0)])
        assert adjacency[0] == {1, 2}

    def test_single_point(self):
        assert voronoi_neighbors([(0.0, 0.0)]) == {0: set()}
