"""Planner dispatch, exact path, refinement accounting, dynamic updates."""


import pytest

from repro.constraints import GeneralizedRelation, Theta
from repro.core import (
    ALL,
    EXIST,
    DualIndex,
    DualIndexPlanner,
    HalfPlaneQuery,
    SlopeSet,
)
from repro.errors import QueryError
from repro.geometry.predicates import evaluate_relation
from repro.storage import KeyCodec, Pager
from tests.conftest import random_bounded_tuple

SLOPES = SlopeSet([-1.0, 0.0, 1.0])


@pytest.fixture
def setup(rng):
    relation = GeneralizedRelation(
        [random_bounded_tuple(rng) for _ in range(90)]
    )
    planner = DualIndexPlanner.build(
        relation, SLOPES, pager=Pager(), key_bytes=4
    )
    return planner, relation


class TestDispatch:
    def test_exact_path_for_slope_in_s(self, setup):
        planner, _ = setup
        res = planner.exist(0.0, 0.0, Theta.GE)
        assert res.technique == "exact"

    def test_t2_for_interior(self, setup):
        planner, _ = setup
        res = planner.exist(0.5, 0.0, Theta.GE)
        assert res.technique == "T2"

    def test_t1_for_wrap(self, setup):
        planner, _ = setup
        res = planner.exist(5.0, 0.0, Theta.GE)
        assert res.technique == "T1"

    def test_forced_t1(self, setup):
        planner, _ = setup
        planner.technique = "T1"
        res = planner.exist(0.5, 0.0, Theta.GE)
        assert res.technique == "T1"

    def test_bad_technique(self, setup):
        planner, _ = setup
        with pytest.raises(QueryError):
            DualIndexPlanner(planner.index, technique="T9")

    def test_3d_query_rejected(self, setup):
        planner, _ = setup
        with pytest.raises(QueryError):
            planner.query(HalfPlaneQuery(EXIST, (1.0, 2.0), 0.0, Theta.GE))


class TestExactPath:
    def test_matches_oracle_all_forms(self, setup, rng):
        planner, relation = setup
        for _ in range(80):
            slope = rng.choice(list(SLOPES))
            qtype = rng.choice([ALL, EXIST])
            theta = rng.choice([Theta.GE, Theta.LE])
            b = rng.uniform(-80, 80)
            res = planner.query(HalfPlaneQuery(qtype, slope, b, theta))
            assert res.technique == "exact"
            want = evaluate_relation(relation, qtype, slope, b, theta)
            assert res.ids == want

    def test_accepts_most_without_refinement(self, setup):
        planner, relation = setup
        res = planner.exist(0.0, -1e5, Theta.GE)  # everything qualifies
        assert len(res.ids) == len(relation)
        assert res.accepted_without_refinement >= len(relation) - 2
        # accepted results cost no heap fetches:
        assert res.refinement_pages <= 1

    def test_exact_page_cost_is_descend_plus_sweep(self, setup):
        planner, relation = setup
        res = planner.exist(0.0, 1e5, Theta.GE)  # empty result
        assert res.ids == set()
        # one root-to-leaf descent, one leaf, no refinement
        assert res.page_accesses <= planner.index.up[1].height + 1


class TestRefinementAccounting:
    def test_counts_are_consistent(self, setup, rng):
        planner, relation = setup
        for _ in range(30):
            a = rng.uniform(-0.99, 0.99)
            if SLOPES.index_of(a) is not None:
                continue
            res = planner.exist(a, rng.uniform(-50, 50), Theta.GE)
            assert res.candidates >= len(res.ids)
            assert res.false_hits == res.candidates - len(res.ids)
            assert res.refinement_pages <= res.candidates
            assert res.index_accesses == res.page_accesses - res.refinement_pages
            assert res.index_accesses > 0

    def test_io_measured_per_query(self, setup):
        planner, _ = setup
        res1 = planner.exist(0.5, -1e5, Theta.GE)  # T2, everything
        res2 = planner.exist(0.0, 1e7, Theta.GE)   # exact path, nothing
        assert res2.page_accesses < res1.page_accesses
        assert res1.io.logical_reads > 0

    def test_t2_empty_above_still_pays_secondary_sweep(self, setup):
        """Known cost profile of the paper's T2: a query above every key
        still triggers the secondary sweep, because the last leaf's
        handicap aggregates an unbounded assignment range. (The tight-
        handicap ablation A7 addresses this.)"""
        planner, _ = setup
        res = planner.exist(0.5, 1e7, Theta.GE)
        assert res.ids == set()
        assert res.false_hits == res.candidates


class TestDynamicPlanner:
    def test_insert_delete_query_cycle(self, rng):
        relation = GeneralizedRelation(
            [random_bounded_tuple(rng) for _ in range(40)]
        )
        idx = DualIndex(Pager(), SLOPES, KeyCodec(4), dynamic=True)
        idx.build(relation)
        planner = DualIndexPlanner(idx)
        live = GeneralizedRelation(t for _, t in relation)

        def verify(n=15):
            for _ in range(n):
                qtype = rng.choice([ALL, EXIST])
                theta = rng.choice([Theta.GE, Theta.LE])
                a = rng.uniform(-3, 3)
                b = rng.uniform(-70, 70)
                res = planner.query(HalfPlaneQuery(qtype, a, b, theta))
                want = evaluate_relation(live, qtype, a, b, theta)
                assert res.ids == want, (qtype, theta, a, b)

        verify()
        for _ in range(30):
            t = random_bounded_tuple(rng)
            tid = live.add(t)
            planner.insert(tid, t)
        verify()
        for tid in rng.sample(list(live.ids()), 35):
            live.remove(tid)
            planner.delete(tid)
        verify()
        for tree in idx.up + idx.down:
            tree.check_invariants()

    def test_refresh_handicaps_requires_dynamic(self, setup):
        planner, _ = setup
        from repro.errors import IndexError_

        with pytest.raises(IndexError_):
            planner.index.refresh_handicaps()

    def test_duplicate_tid_rejected(self, rng):
        idx = DualIndex(Pager(), SLOPES, KeyCodec(4), dynamic=True)
        idx.build(GeneralizedRelation())
        from repro.errors import IndexError_

        t = random_bounded_tuple(rng)
        idx.insert(1, t)
        with pytest.raises(IndexError_):
            idx.insert(1, t)
        idx.delete(1)
        with pytest.raises(IndexError_):
            idx.delete(1)
