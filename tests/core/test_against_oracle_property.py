"""The headline property test: every index answers like the oracle.

One shared workload, three structures (dual index T1, dual index T2, the
R+-tree), hypothesis-driven queries over all types/operators/slope cases.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.constraints import GeneralizedRelation, Theta
from repro.core import ALL, EXIST, DualIndexPlanner, HalfPlaneQuery, SlopeSet
from repro.geometry.predicates import evaluate_relation
from repro.rtree.planner import RTreePlanner
from repro.storage import Pager
from tests.conftest import random_bounded_tuple

_STATE = {}


def _setup():
    if _STATE:
        return _STATE
    rng = random.Random(77)
    relation = GeneralizedRelation(
        [random_bounded_tuple(rng) for _ in range(150)]
    )
    slopes = SlopeSet([-2.0, -0.6, 0.6, 2.0])
    _STATE["relation"] = relation
    _STATE["t2"] = DualIndexPlanner.build(
        relation, slopes, pager=Pager(), key_bytes=4, technique="T2"
    )
    _STATE["t1"] = DualIndexPlanner(_STATE["t2"].index, technique="T1")
    _STATE["rplus"] = RTreePlanner.build(relation, pager=Pager(), key_bytes=4)
    return _STATE


@settings(max_examples=150, deadline=None)
@given(
    a=st.one_of(
        st.floats(min_value=-3.0, max_value=3.0),
        st.sampled_from([-2.0, -0.6, 0.6, 2.0]),  # exact-path slopes
        st.floats(min_value=-40.0, max_value=40.0),  # wrap cases
    ),
    b=st.floats(min_value=-100.0, max_value=100.0),
    qtype=st.sampled_from([ALL, EXIST]),
    ge=st.booleans(),
)
def test_all_structures_agree_with_oracle(a, b, qtype, ge):
    state = _setup()
    theta = Theta.GE if ge else Theta.LE
    query = HalfPlaneQuery(qtype, a, b, theta)
    want = evaluate_relation(state["relation"], qtype, a, b, theta)
    for name in ("t1", "t2", "rplus"):
        got = state[name].query(query)
        assert got.ids == want, (name, query, got.technique)
