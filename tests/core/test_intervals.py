"""Interval tree and line-query index tests (footnote 6)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints import GeneralizedRelation
from repro.core import SlopeSet
from repro.errors import IndexError_, QueryError
from repro.geometry import bot, top
from repro.intervals import Interval, IntervalTree, LineQueryIndex
from repro.storage import KeyCodec, Pager
from tests.conftest import random_bounded_tuple, random_mixed_relation

bound = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


@st.composite
def intervals(draw):
    a = draw(bound)
    b = draw(bound)
    lo, hi = min(a, b), max(a, b)
    return (lo, hi)


class TestIntervalTree:
    def test_empty(self):
        tree = IntervalTree(Pager(), KeyCodec(8))
        tree.build([])
        assert tree.stab(0.0) == set()

    def test_basic_stabbing(self):
        tree = IntervalTree(Pager(), KeyCodec(8))
        tree.build(
            [
                Interval(0.0, 10.0, 1),
                Interval(5.0, 15.0, 2),
                Interval(20.0, 30.0, 3),
            ]
        )
        assert tree.stab(7.0) == {1, 2}
        assert tree.stab(0.0) == {1}
        assert tree.stab(25.0) == {3}
        assert tree.stab(17.0) == set()

    def test_infinite_endpoints(self):
        tree = IntervalTree(Pager(), KeyCodec(4))
        tree.build(
            [
                Interval(-math.inf, 0.0, 1),
                Interval(0.0, math.inf, 2),
                Interval(-math.inf, math.inf, 3),
            ]
        )
        assert tree.stab(-5.0) >= {1, 3}
        assert tree.stab(5.0) >= {2, 3}
        assert tree.stab(0.0) >= {1, 2, 3}

    def test_inverted_rejected(self):
        tree = IntervalTree(Pager(), KeyCodec(8))
        with pytest.raises(IndexError_):
            tree.build([Interval(1.0, 0.0, 1)])

    def test_rebuild_rejected(self):
        tree = IntervalTree(Pager(), KeyCodec(8))
        tree.build([Interval(0.0, 1.0, 1)])
        with pytest.raises(IndexError_):
            tree.build([Interval(0.0, 1.0, 2)])

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.lists(intervals(), min_size=1, max_size=120),
        probe=bound,
    )
    def test_matches_bruteforce(self, data, probe):
        tree = IntervalTree(Pager(), KeyCodec(8))
        tree.build([Interval(lo, hi, i) for i, (lo, hi) in enumerate(data)])
        got = tree.stab(probe)
        want = {i for i, (lo, hi) in enumerate(data) if lo <= probe <= hi}
        assert got >= want  # margin may add near-boundary extras
        for extra in got - want:
            lo, hi = data[extra]
            assert min(abs(probe - lo), abs(probe - hi)) < 1e-6 * max(
                1.0, abs(probe)
            )

    def test_stab_page_cost_logarithmic(self):
        rng = random.Random(1)
        pager = Pager()
        tree = IntervalTree(pager, KeyCodec(4))
        data = []
        for i in range(4000):
            lo = rng.uniform(-1000, 1000)
            data.append(Interval(lo, lo + rng.uniform(0.1, 5.0), i))
        tree.build(data)
        with pager.measure() as scope:
            result = tree.stab(0.0)
        # few stabbing results -> few pages despite 4000 intervals
        assert scope.delta.logical_reads <= 25, scope.delta.logical_reads
        assert len(result) <= 40


class TestLineQueryIndex:
    @pytest.fixture
    def setup(self, rng):
        relation = random_mixed_relation(rng, 60, unbounded_fraction=0.25)
        slopes = SlopeSet([-1.0, 0.0, 1.0])
        index = LineQueryIndex.build(relation, slopes, key_bytes=4)
        return index, relation, slopes

    def test_matches_oracle(self, setup, rng):
        index, relation, slopes = setup
        for _ in range(80):
            s = rng.choice(list(slopes))
            b = rng.uniform(-80, 80)
            res = index.crossing(s, b)
            want = set()
            for tid, t in relation:
                poly = t.extension()
                if bot(poly, s) - 1e-7 <= b <= top(poly, s) + 1e-7:
                    want.add(tid)
            assert res.ids == want, (s, b)

    def test_slope_outside_s_rejected(self, setup):
        index, _, _ = setup
        with pytest.raises(QueryError):
            index.crossing(0.5, 0.0)

    def test_diagnostics(self, setup):
        index, relation, slopes = setup
        res = index.crossing(0.0, 0.0)
        assert res.technique == "interval"
        assert res.candidates >= len(res.ids)
        assert res.page_accesses > 0

    def test_space_accounting(self, setup):
        index, _, _ = setup
        assert index.space_pages() == sum(
            t.page_count for t in index.trees
        )
        assert index.space_pages() >= len(index.trees)

    def test_skips_unsatisfiable(self, rng):
        from repro.constraints import parse_tuple

        relation = GeneralizedRelation(
            [
                random_bounded_tuple(rng),
                parse_tuple("x <= 0 and x >= 1", dimension=2),
            ]
        )
        index = LineQueryIndex.build(relation, SlopeSet([0.0]))
        assert index.size == 1
        assert index.skipped == [1]
