"""Technique T1 tests: app-query construction and execution."""

import random

import pytest

from repro.constraints import GeneralizedRelation, GeneralizedTuple, Theta
from repro.core import (
    ALL,
    EXIST,
    DualIndex,
    DualIndexPlanner,
    HalfPlaneQuery,
    SlopeSet,
    build_app_queries,
    t1_candidates,
)
from repro.errors import QueryError
from repro.geometry.predicates import evaluate_relation, halfplane_constraint
from repro.storage import KeyCodec, Pager
from tests.conftest import random_bounded_tuple, random_mixed_relation


@pytest.fixture
def index(rng):
    relation = GeneralizedRelation(
        [random_bounded_tuple(rng) for _ in range(80)]
    )
    idx = DualIndex(Pager(), SlopeSet([-1.5, 0.0, 1.5]), KeyCodec(8))
    idx.build(relation)
    return idx, relation


class TestAppQueryConstruction:
    def test_interior_case(self, index):
        idx, _ = index
        q = HalfPlaneQuery(EXIST, 0.7, 2.0, Theta.GE)
        q1, q2 = build_app_queries(idx, q, pivot_x=0.0)
        assert idx.slopes[q1.slope_index] == 0.0
        assert idx.slopes[q2.slope_index] == 1.5
        assert q1.theta is Theta.GE and q2.theta is Theta.GE
        assert q1.query_type == EXIST and q2.query_type == EXIST

    def test_all_becomes_exist_plus_all(self, index):
        idx, _ = index
        q = HalfPlaneQuery(ALL, 0.7, 2.0, Theta.GE)
        q1, q2 = build_app_queries(idx, q)
        assert q1.query_type == EXIST
        assert q2.query_type == ALL

    def test_wrap_above_flips_theta2(self, index):
        idx, _ = index
        q = HalfPlaneQuery(EXIST, 9.0, 2.0, Theta.GE)
        q1, q2 = build_app_queries(idx, q)
        assert idx.slopes[q1.slope_index] == 1.5
        assert idx.slopes[q2.slope_index] == -1.5
        assert q1.theta is Theta.GE
        assert q2.theta is Theta.LE  # Table 1 row 2

    def test_pivot_moves_intercepts(self, index):
        idx, _ = index
        q = HalfPlaneQuery(EXIST, 0.7, 2.0, Theta.GE)
        q1a, _ = build_app_queries(idx, q, pivot_x=0.0)
        q1b, _ = build_app_queries(idx, q, pivot_x=10.0)
        assert q1a.intercept != q1b.intercept
        # both app-lines pass through the pivot on the query line:
        a = q.slope_2d
        for pivot, app in ((0.0, q1a), (10.0, q1b)):
            y_pivot = a * pivot + q.intercept
            s1 = idx.slopes[app.slope_index]
            assert s1 * pivot + app.intercept == pytest.approx(y_pivot)

    def test_exact_slope_rejected(self, index):
        idx, _ = index
        with pytest.raises(QueryError):
            build_app_queries(idx, HalfPlaneQuery(EXIST, 0.0, 1.0, Theta.GE))


class TestCoverage:
    """Correctness requirement: q ⊆ q1 ∪ q2 (every answer is caught)."""

    def test_halfplane_union_covers(self, index):
        idx, _ = index
        rng = random.Random(9)
        for _ in range(300):
            a = rng.uniform(-6, 6)
            if idx.slopes.index_of(a) is not None:
                continue
            theta = rng.choice([Theta.GE, Theta.LE])
            q = HalfPlaneQuery(EXIST, a, rng.uniform(-20, 20), theta)
            q1, q2 = build_app_queries(idx, q, pivot_x=rng.uniform(-10, 10))
            c = halfplane_constraint(a, q.intercept, theta, 2)
            c1 = halfplane_constraint(
                idx.slopes[q1.slope_index], q1.intercept, q1.theta, 2
            )
            c2 = halfplane_constraint(
                idx.slopes[q2.slope_index], q2.intercept, q2.theta, 2
            )
            for _ in range(40):
                p = (rng.uniform(-200, 200), rng.uniform(-200, 200))
                if c.satisfied_by(p):
                    assert c1.satisfied_by(p, 1e-9) or c2.satisfied_by(p, 1e-9)


class TestExecution:
    def test_candidates_superset_of_answer(self, index):
        idx, relation = index
        rng = random.Random(10)
        for _ in range(60):
            a = rng.uniform(-5, 5)
            if idx.slopes.index_of(a) is not None:
                continue
            qtype = rng.choice([ALL, EXIST])
            theta = rng.choice([Theta.GE, Theta.LE])
            q = HalfPlaneQuery(qtype, a, rng.uniform(-60, 60), theta)
            rids, _dups = t1_candidates(idx, q)
            got_tids = {idx.tid_of[rid] for rid in rids}
            want = evaluate_relation(relation, qtype, a, q.intercept, theta)
            assert want <= got_tids, q

    def test_duplicates_counted(self, index):
        idx, relation = index
        # a broad EXIST query makes both app-queries return almost
        # everything: duplicates must show up.
        q = HalfPlaneQuery(EXIST, 0.7, -1e4, Theta.GE)
        _rids, duplicates = t1_candidates(idx, q)
        assert duplicates > 0

    def test_figure_4_correctness(self):
        """Figure 4: two ALL app-queries would miss a tuple that the
        original ALL query contains; the EXIST+ALL combination must not.
        """
        # A wide flat tuple straddling the pivot: contained in the query
        # half-plane but in neither app half-plane alone (Figure 4).
        t = GeneralizedTuple.from_vertices_2d(
            [(-10.0, 2.0), (10.0, 2.0), (10.0, 3.0), (-10.0, 3.0)]
        )
        relation = GeneralizedRelation([t])
        planner = DualIndexPlanner.build(
            relation, SlopeSet([-1.0, 1.0]), key_bytes=8, technique="T1"
        )
        # Query ALL(y >= 0.0x + 1): contains the tuple (min y = 4).
        res = planner.all(0.0, 1.0, Theta.GE)
        assert res.ids == {0}
        # Check the would-be ALL/ALL approximation indeed fails: neither
        # app half-plane alone contains the tuple.
        q1, q2 = build_app_queries(
            planner.index, HalfPlaneQuery(ALL, 0.0, 1.0, Theta.GE)
        )
        from repro.geometry.predicates import all_halfplane

        s1 = planner.index.slopes[q1.slope_index]
        s2 = planner.index.slopes[q2.slope_index]
        contained1 = all_halfplane(t.extension(), s1, q1.intercept, q1.theta)
        contained2 = all_halfplane(t.extension(), s2, q2.intercept, q2.theta)
        assert not (contained1 and contained2)


class TestEndToEnd:
    def test_t1_planner_matches_oracle(self, rng):
        relation = random_mixed_relation(rng, 60, unbounded_fraction=0.2)
        planner = DualIndexPlanner.build(
            relation, SlopeSet([-2.0, -0.5, 0.5, 2.0]),
            key_bytes=4, technique="T1",
        )
        for _ in range(120):
            qtype = rng.choice([ALL, EXIST])
            theta = rng.choice([Theta.GE, Theta.LE])
            a = rng.uniform(-6, 6)
            b = rng.uniform(-80, 80)
            res = planner.query(HalfPlaneQuery(qtype, a, b, theta))
            want = evaluate_relation(relation, qtype, a, b, theta)
            assert res.ids == want, (qtype, theta, a, b, res.technique)
