"""d-dimensional extension tests (Section 4.4)."""

import random

import pytest

from repro.constraints import (
    GeneralizedRelation,
    GeneralizedTuple,
    LinearConstraint,
    Theta,
)
from repro.core import DDimPlanner, HalfPlaneQuery, SlopePointSet
from repro.errors import QueryError, SlopeSetError
from repro.geometry.predicates import evaluate_relation

SLOPE_POINTS = [(-1.0, -1.0), (-1.0, 1.0), (1.0, -1.0), (1.0, 1.0), (0.0, 0.0)]
DOMAIN = ((-1.5, -1.5), (1.5, 1.5))


def random_box3(rng):
    lows = [rng.uniform(-40, 40) for _ in range(3)]
    highs = [lo + rng.uniform(1, 15) for lo in lows]
    return GeneralizedTuple.from_box(lows, highs)


def random_polytope3(rng):
    t = random_box3(rng)
    normal = tuple(rng.uniform(-1, 1) for _ in range(3))
    cut = LinearConstraint(normal, rng.uniform(-20, 20), "<=")
    return GeneralizedTuple(list(t.constraints) + [cut])


@pytest.fixture(scope="module")
def relation3():
    rng = random.Random(31)
    tuples = []
    while len(tuples) < 70:
        t = random_box3(rng) if rng.random() < 0.6 else random_polytope3(rng)
        if t.is_satisfiable():
            tuples.append(t)
    return GeneralizedRelation(tuples)


@pytest.fixture(scope="module")
def planner3(relation3):
    return DDimPlanner.build(relation3, SLOPE_POINTS, *DOMAIN, key_bytes=4)


class TestSlopePointSet:
    def test_validation(self):
        with pytest.raises(SlopeSetError):
            SlopePointSet([], (-1,), (1,))
        with pytest.raises(SlopeSetError):
            SlopePointSet([(0.0, 0.0), (0.0, 0.0)], (-1, -1), (1, 1))
        with pytest.raises(SlopeSetError):
            SlopePointSet([(0.0, 0.0)], (1, 1), (-1, -1))

    def test_nearest_and_domain(self):
        s = SlopePointSet(SLOPE_POINTS, *DOMAIN)
        assert s.nearest((0.1, 0.1)) == 4
        assert s.nearest((0.9, 0.9)) == 3
        assert s.in_domain((1.2, -1.2))
        assert not s.in_domain((2.0, 0.0))

    def test_cells_partition_domain(self):
        s = SlopePointSet(SLOPE_POINTS, *DOMAIN)
        rng = random.Random(1)
        for _ in range(200):
            q = (rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5))
            anchor = s.nearest(q)
            cell = s.cell_vertices(anchor)
            assert cell, "cell should be non-empty"
            # q must lie in the hull of the cell vertices (its own cell):
            # verify via the cell inequalities instead of hull math.
            for n, beta in s._cell_ineqs(anchor):
                assert sum(a * b for a, b in zip(n, q)) <= beta + 1e-6

    def test_cell_vertices_within_domain(self):
        s = SlopePointSet(SLOPE_POINTS, *DOMAIN)
        for i in range(len(SLOPE_POINTS)):
            for v in s.cell_vertices(i):
                assert s.in_domain(v)

    def test_1d_slope_space(self):
        # d=2 through the d-dim machinery: slope points on a line.
        s = SlopePointSet([(-1.0,), (0.0,), (2.0,)], (-3.0,), (3.0,))
        assert s.cell_vertices(1) == [(-0.5,), (1.0,)]


class TestDDimQueries:
    def test_matches_oracle(self, planner3, relation3):
        rng = random.Random(8)
        for _ in range(120):
            qtype = rng.choice(["ALL", "EXIST"])
            theta = rng.choice([Theta.GE, Theta.LE])
            slope = (rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5))
            b = rng.uniform(-120, 120)
            res = planner3.query(HalfPlaneQuery(qtype, slope, b, theta))
            want = evaluate_relation(relation3, qtype, slope, b, theta)
            assert res.ids == want, (qtype, theta, slope, b)

    def test_anchor_slopes_cheapest(self, planner3):
        # Queries at anchor points behave like the restricted technique.
        res = planner3.exist(SLOPE_POINTS[4], 1e6, Theta.GE)
        assert res.ids == set()
        assert res.page_accesses <= 30

    def test_out_of_domain_rejected(self, planner3):
        with pytest.raises(QueryError):
            planner3.exist((5.0, 0.0), 0.0, Theta.GE)

    def test_wrong_dimension_rejected(self, planner3):
        with pytest.raises(QueryError):
            planner3.query(HalfPlaneQuery("EXIST", 0.5, 0.0, Theta.GE))

    def test_space_scales_with_k(self, relation3):
        small = DDimPlanner.build(relation3, SLOPE_POINTS[:2], *DOMAIN)
        large = DDimPlanner.build(relation3, SLOPE_POINTS, *DOMAIN)
        assert large.index.space().tree_pages > small.index.space().tree_pages


class TestDDim2DCrossCheck:
    """The d-dim machinery run at d=2 must agree with the 2-D planner."""

    def test_agrees_with_2d_planner(self, rng):
        from repro.core import DualIndexPlanner, SlopeSet
        from tests.conftest import random_bounded_tuple

        relation = GeneralizedRelation(
            [random_bounded_tuple(rng) for _ in range(50)]
        )
        flat = DualIndexPlanner.build(relation, SlopeSet([-1.0, 0.0, 1.0]))
        deep = DDimPlanner.build(
            relation, [(-1.0,), (0.0,), (1.0,)], (-1.4,), (1.4,)
        )
        for _ in range(60):
            qtype = rng.choice(["ALL", "EXIST"])
            theta = rng.choice([Theta.GE, Theta.LE])
            a = rng.uniform(-1.4, 1.4)
            b = rng.uniform(-70, 70)
            left = flat.query(HalfPlaneQuery(qtype, a, b, theta))
            right = deep.query(HalfPlaneQuery(qtype, (a,), b, theta))
            assert left.ids == right.ids, (qtype, theta, a, b)
