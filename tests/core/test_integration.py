"""End-to-end integration tests across subsystems.

These exercise the whole stack — parser → geometry → storage → trees →
planner → refinement — the way a downstream application would, including
shared-pager deployments and long mixed workloads.
"""



from repro.constraints import GeneralizedRelation, Theta, parse_tuple
from repro.core import (
    ALL,
    EXIST,
    DualIndex,
    DualIndexPlanner,
    HalfPlaneQuery,
    SlopeSet,
)
from repro.geometry.predicates import evaluate_relation
from repro.intervals import LineQueryIndex
from repro.rtree.planner import RTreePlanner
from repro.storage import KeyCodec, Pager
from tests.conftest import random_bounded_tuple, random_mixed_relation


class TestSharedPager:
    """Multiple structures coexisting on one disk, as in a real system."""

    def test_dual_rplus_and_intervals_share_a_disk(self, rng):
        relation = GeneralizedRelation(
            [random_bounded_tuple(rng) for _ in range(80)]
        )
        pager = Pager(buffer_frames=32)
        slopes = SlopeSet([-1.0, 0.0, 1.0])
        dual = DualIndexPlanner.build(relation, slopes, pager=pager)
        rplus = RTreePlanner.build(relation, pager=pager)
        lines = LineQueryIndex.build(relation, slopes, pager=pager)

        for _ in range(25):
            a = rng.uniform(-0.9, 0.9)
            b = rng.uniform(-60, 60)
            theta = rng.choice([Theta.GE, Theta.LE])
            qtype = rng.choice([ALL, EXIST])
            left = dual.query(HalfPlaneQuery(qtype, a, b, theta))
            right = rplus.query(HalfPlaneQuery(qtype, a, b, theta))
            assert left.ids == right.ids
        for s in slopes:
            res = lines.crossing(s, rng.uniform(-40, 40))
            assert res.ids <= set(relation.ids())
        # no page was double-owned
        owned = [
            *(
                pid
                for tree in dual.index.up + dual.index.down
                for pid in tree.owned_pages
            ),
            *rplus.tree.owned_pages,
            *(pid for t in lines.trees for pid in t.owned_pages),
        ]
        assert len(owned) == len(set(owned))


class TestLongMixedWorkload:
    def test_interleaved_updates_and_queries(self, rng):
        slopes = SlopeSet([-1.2, -0.3, 0.3, 1.2])
        index = DualIndex(Pager(), slopes, KeyCodec(4), dynamic=True)
        index.build(GeneralizedRelation())
        planner = DualIndexPlanner(index)
        live = GeneralizedRelation()
        mismatches = 0
        for step in range(220):
            roll = rng.random()
            if roll < 0.45 or len(live) < 5:
                t = random_bounded_tuple(rng)
                tid = live.add(t)
                planner.insert(tid, t)
            elif roll < 0.65:
                tid = rng.choice(list(live.ids()))
                live.remove(tid)
                planner.delete(tid)
            else:
                qtype = rng.choice([ALL, EXIST])
                theta = rng.choice([Theta.GE, Theta.LE])
                a = rng.uniform(-1.1, 1.1)
                b = rng.uniform(-70, 70)
                res = planner.query(HalfPlaneQuery(qtype, a, b, theta))
                want = evaluate_relation(live, qtype, a, b, theta)
                if res.ids != want:
                    mismatches += 1
        assert mismatches == 0
        for tree in index.up + index.down:
            tree.check_invariants()
        assert index.size == len(live)

    def test_grow_shrink_grow(self, rng):
        slopes = SlopeSet([-0.8, 0.8])
        index = DualIndex(Pager(), slopes, KeyCodec(4), dynamic=True)
        index.build(GeneralizedRelation())
        planner = DualIndexPlanner(index)
        tuples = {}
        for tid in range(60):
            t = random_bounded_tuple(rng)
            tuples[tid] = t
            planner.insert(tid, t)
        for tid in range(60):
            planner.delete(tid)
        assert index.size == 0
        for tid in range(100, 130):
            t = random_bounded_tuple(rng)
            tuples[tid] = t
            planner.insert(tid, t)
        res = planner.exist(0.1, -1e6, Theta.GE)
        assert res.ids == set(range(100, 130))


class TestParserToPlanner:
    def test_textual_workflow(self):
        relation = GeneralizedRelation(
            [
                parse_tuple("y >= 0 and y <= 10 and x >= 0 and x <= 10"),
                parse_tuple("y >= 20 and y <= 30 and x >= 0 and x <= 10"),
                parse_tuple("y >= 2x + 100"),
            ]
        )
        planner = DualIndexPlanner.build(relation, SlopeSet([-1.0, 0.0, 1.0]))
        # y >= 15 separates the two boxes; the unbounded tuple qualifies.
        res = planner.exist(0.0, 15.0, Theta.GE)
        assert res.ids == {1, 2}
        res = planner.all(0.0, 15.0, Theta.LE)
        assert res.ids == {0}

    def test_mixed_relation_with_all_techniques(self, rng):
        relation = random_mixed_relation(rng, 45, unbounded_fraction=0.3)
        planner = DualIndexPlanner.build(
            relation, SlopeSet([-1.5, 0.0, 1.5]), key_bytes=4
        )
        seen = set()
        for a in (-1.5, -0.7, 0.0, 0.9, 1.5, 7.0, -9.0):
            res = planner.query(HalfPlaneQuery(EXIST, a, 0.0, Theta.GE))
            want = evaluate_relation(relation, EXIST, a, 0.0, Theta.GE)
            assert res.ids == want, a
            seen.add(res.technique)
        assert seen == {"exact", "T2", "T1"}
