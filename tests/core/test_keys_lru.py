"""The bounded key cache: LRU semantics, and eviction preserving answers."""

from __future__ import annotations

import random

import pytest

from repro.core import DualIndexPlanner, HalfPlaneQuery, SlopeSet
from repro.core.dual_index import DualIndex, KeysLRU
from repro.errors import IndexError_
from tests.conftest import random_bounded_tuple, random_mixed_relation

SLOPES = SlopeSet([-1.0, 0.0, 1.0])


def test_lru_evicts_least_recently_used():
    cache = KeysLRU(2)
    cache[1] = "a"
    cache[2] = "b"
    assert cache.get(1) == "a"  # touch 1 → 2 becomes the eviction victim
    cache[3] = "c"
    assert 2 not in cache
    assert 1 in cache and 3 in cache
    assert len(cache) == 2


def test_lru_overwrite_refreshes_recency():
    cache = KeysLRU(2)
    cache[1] = "a"
    cache[2] = "b"
    cache[1] = "a2"
    cache[3] = "c"
    assert 2 not in cache
    assert cache.get(1) == "a2"
    assert cache.pop(3) == "c"
    assert cache.pop(3, "missing") == "missing"


def test_lru_rejects_nonpositive_capacity():
    with pytest.raises(IndexError_):
        KeysLRU(0)


def _answers(planner, queries):
    return [frozenset(planner.query(q).ids) for q in queries]


def test_eviction_never_changes_answers():
    """A keys_cache far smaller than the relation must not change any
    answer through build, deletes, inserts, and maintenance — evicted
    keys are re-derived from heap records on demand."""
    rng = random.Random(0xBEEF)
    relation = random_mixed_relation(rng, 40)
    queries = [
        HalfPlaneQuery(
            rng.choice(["ALL", "EXIST"]),
            rng.uniform(-2.0, 2.0),
            rng.uniform(-40.0, 40.0),
            rng.choice([">=", "<="]),
        )
        for _ in range(12)
    ]

    def build(capacity):
        index = DualIndex(
            slopes=SLOPES, dynamic=True, keys_cache_entries=capacity
        )
        index.build(relation)
        return DualIndexPlanner(index)

    roomy = build(1 << 16)
    tiny = build(3)
    assert len(tiny.index.keys_cache) <= 3
    assert _answers(tiny, queries) == _answers(roomy, queries)

    victims = [tid for tid, _t in relation][::4]
    extra = {max(tid for tid, _t in relation) + 1 + i: random_bounded_tuple(rng)
             for i in range(4)}
    for planner in (roomy, tiny):
        for tid in victims:
            planner.delete(tid)
        for tid, t in extra.items():
            planner.insert(tid, t)
        planner.index.refresh_handicaps()
    assert _answers(tiny, queries) == _answers(roomy, queries)
