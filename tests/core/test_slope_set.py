"""SlopeSet and Table 1 case-analysis tests."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints import Theta
from repro.core import SlopeCase, SlopeSet
from repro.errors import SlopeSetError


class TestConstruction:
    def test_sorted_and_deduplicated(self):
        s = SlopeSet([3.0, -1.0, 0.5])
        assert s.slopes == (-1.0, 0.5, 3.0)

    def test_duplicates_rejected(self):
        with pytest.raises(SlopeSetError):
            SlopeSet([1.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(SlopeSetError):
            SlopeSet([])

    def test_nonfinite_rejected(self):
        with pytest.raises(SlopeSetError):
            SlopeSet([float("inf")])

    def test_from_angles(self):
        s = SlopeSet.from_angles([math.pi / 4, 3 * math.pi / 4])
        assert s.slopes == (pytest.approx(-1.0), pytest.approx(1.0))

    def test_uniform_angles_avoids_vertical(self):
        for k in range(1, 9):
            s = SlopeSet.uniform_angles(k)
            assert len(s) == k
            assert all(abs(v) < 50 for v in s), list(s)

    def test_membership(self):
        s = SlopeSet([0.0, 1.0])
        assert 1.0 in s
        assert 0.5 not in s
        assert s.index_of(1.0) == 1
        assert s.index_of(1.0 + 1e-13, tol=1e-12) == 1
        assert s.index_of(2.0) is None


class TestClassify:
    @pytest.fixture
    def s(self):
        return SlopeSet([-2.0, 0.0, 1.5])

    def test_exact(self, s):
        info = s.classify(0.0)
        assert info.case is SlopeCase.EXACT
        assert info.index1 == info.index2 == 1

    def test_interior(self, s):
        info = s.classify(0.7)
        assert info.case is SlopeCase.INTERIOR
        assert (s[info.index1], s[info.index2]) == (0.0, 1.5)
        assert not info.flip1 and not info.flip2  # Table 1 row 1

    def test_above(self, s):
        # a > max S: clockwise hits max S (θ), anticlockwise wraps to
        # min S with ¬θ — Table 1 row 2.
        info = s.classify(5.0)
        assert info.case is SlopeCase.ABOVE
        assert s[info.index1] == 1.5 and not info.flip1
        assert s[info.index2] == -2.0 and info.flip2

    def test_below(self, s):
        info = s.classify(-9.0)
        assert info.case is SlopeCase.BELOW
        assert s[info.index1] == 1.5 and info.flip1
        assert s[info.index2] == -2.0 and not info.flip2

    def test_singleton_set(self):
        s1 = SlopeSet([0.0])
        above = s1.classify(1.0)
        assert above.case is SlopeCase.ABOVE
        assert not above.flip1 and above.flip2
        below = s1.classify(-1.0)
        assert below.case is SlopeCase.BELOW
        assert below.flip1 and not below.flip2

    def test_app_theta(self):
        assert SlopeSet.app_theta(Theta.GE, False) is Theta.GE
        assert SlopeSet.app_theta(Theta.GE, True) is Theta.LE


class TestNearestAndStrips:
    @pytest.fixture
    def s(self):
        return SlopeSet([-2.0, 0.0, 1.0])

    def test_nearest(self, s):
        assert s[s.nearest(-1.8)] == -2.0
        assert s[s.nearest(-0.9)] == 0.0
        assert s[s.nearest(0.6)] == 1.0
        assert s[s.nearest(99.0)] == 1.0

    def test_strip_next(self, s):
        assert s.strip(0, "next") == (-2.0, -1.0)
        assert s.strip(1, "next") == (0.0, 0.5)
        assert s.strip(2, "next") is None

    def test_strip_prev(self, s):
        assert s.strip(0, "prev") is None
        assert s.strip(1, "prev") == (0.0, -1.0)
        assert s.strip(2, "prev") == (1.0, 0.5)

    def test_strip_bad_side(self, s):
        with pytest.raises(SlopeSetError):
            s.strip(0, "left")

    def test_anchor_for_interior(self, s):
        index, side = s.anchor_for(-1.7)
        assert s[index] == -2.0 and side == "next"
        index, side = s.anchor_for(-0.3)
        assert s[index] == 0.0 and side == "prev"

    def test_anchor_for_wrap_is_none(self, s):
        assert s.anchor_for(5.0) is None
        assert s.anchor_for(-2.0) is None  # exact min: not interior
        assert s.anchor_for(-3.0) is None

    @settings(max_examples=100, deadline=None)
    @given(a=st.floats(min_value=-1.99, max_value=0.99))
    def test_anchor_strip_always_covers_query(self, a):
        s = SlopeSet([-2.0, 0.0, 1.0])
        anchor = s.anchor_for(a)
        if anchor is None:
            return
        index, side = anchor
        lo, hi = sorted(s.strip(index, side))
        assert lo - 1e-12 <= a <= hi + 1e-12
