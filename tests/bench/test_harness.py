"""Benchmark-harness unit tests (small scale)."""

import os


from repro.bench import harness
from repro.bench.figures import figure_8_9, figure_10, render_figure, render_figure_10
from repro.core import ALL, EXIST


class TestConfig:
    def test_reduced_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not harness.full_run()
        assert harness.n_values() == (500, 2000, 4000)

    def test_full_run_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert harness.full_run()
        assert harness.n_values() == harness.PAPER_N_VALUES
        assert harness.k_values() == harness.PAPER_K_VALUES


class TestBuilders:
    def test_relation_cached(self):
        a = harness.relation(60, "small", seed=5)
        b = harness.relation(60, "small", seed=5)
        assert a is b
        assert len(a) == 60

    def test_dual_planner_cached(self):
        a = harness.dual_planner(60, "small", 2, seed=5)
        b = harness.dual_planner(60, "small", 2, seed=5)
        assert a is b
        assert a.index.size == 60

    def test_rplus_planner_cached(self):
        a = harness.rplus_planner(60, "small", seed=5)
        assert a is harness.rplus_planner(60, "small", seed=5)

    def test_queries_calibrated(self):
        queries = harness.queries_for(60, "small", EXIST, 2, count=3, seed=5)
        assert len(queries) == 3
        lo, hi = harness.interior_slope_range(2)
        assert all(lo <= q.slope_2d <= hi for q in queries)


class TestMeasurement:
    def test_batch_stats(self):
        planner = harness.dual_planner(60, "small", 2, seed=5)
        queries = harness.queries_for(60, "small", ALL, 2, count=3, seed=5)
        stats = harness.QueryBatchStats.measure(planner.query, queries)
        assert stats.total_accesses >= stats.index_accesses > 0
        assert stats.candidates >= stats.results

    def test_cross_check_passes(self):
        dual = harness.dual_planner(60, "small", 2, seed=5)
        rplus = harness.rplus_planner(60, "small", seed=5)
        queries = harness.queries_for(60, "small", EXIST, 2, count=2, seed=5)
        harness.cross_check(dual, rplus, queries)


class TestReporting:
    def test_format_table(self):
        text = harness.format_table(
            "demo", ["a", "bb"], [[1, 2.5], [30, 4.25]]
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "bb" in lines[2]
        assert "4.2" in lines[-1]

    def test_emit_saves(self, tmp_path, monkeypatch):
        import repro.bench.harness as h

        monkeypatch.setattr(
            os.path, "join",
            lambda *parts: os.sep.join(parts) if "results" not in parts[-1]
            else str(tmp_path / parts[-1]),
        )
        # emit must not raise even with patched paths
        h.emit("hello world")


class TestFigureDrivers:
    def test_figure_series_shape(self):
        series = figure_8_9(
            "small", EXIST, n_values=(60,), k_values=(2,)
        )
        labels = [s.label for s in series]
        assert labels == ["T2 k=2", "R+-tree"]
        assert 60 in series[0].points
        text = render_figure("demo", series)
        assert "T2 k=2" in text and "R+-tree" in text

    def test_figure_10_rows(self):
        rows = figure_10("small", n_values=(60,), k_values=(2,))
        structures = [r.structure for r in rows]
        assert "R+-tree" in structures and "T2 k=2" in structures
        rplus = next(r for r in rows if r.structure == "R+-tree")
        assert rplus.ratio_to_rplus == 1.0
        text = render_figure_10(rows)
        assert "ratio vs R+" in text
