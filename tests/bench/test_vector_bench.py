"""vector-bench: payload shape, engine parity, and the CI floor wiring."""

import json

from repro.bench import vector_bench
from repro.bench.diff import diff_counters, load_counters


class TestRunBench:
    def test_small_workload_payload(self, tmp_path):
        # Tiny workload: the point here is parity + shape, not timing.
        payload = vector_bench.run_bench(
            n=120, size="small", k=3, seed=5, repeats=1, width=3
        )
        assert payload["answers_identical"] is True
        assert payload["pages_identical"] is True
        assert payload["workload"]["queries"] == 3 * 3 * 4
        engines = {row["engine"] for row in payload["engines"]}
        assert engines == {"scalar", "columnar"}
        assert payload["speedup_vs_scalar"] > 0
        # The counters section is what bench-diff --mode floor consumes.
        assert set(payload["counters"]) >= {
            "qps_scalar", "qps_columnar", "speedup_vs_scalar",
        }
        out = tmp_path / "BENCH_vector.json"
        out.write_text(json.dumps(payload))
        counters = load_counters(str(out))
        assert counters["qps_columnar"] == payload["counters"]["qps_columnar"]

    def test_main_writes_artifact_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "v.json"
        code = vector_bench.main(
            ["--out", str(out), "--n", "120", "--size", "small",
             "--repeats", "1", "--width", "2"]
        )
        assert code == 0
        assert "answers identical: True" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["answers_identical"] and doc["pages_identical"]

    def test_counters_floor_gate_round_trip(self, tmp_path):
        payload = vector_bench.run_bench(
            n=120, size="small", k=3, seed=5, repeats=1, width=2
        )
        baseline = {"qps_columnar": payload["counters"]["qps_columnar"]}
        # Same run vs itself: no floor regression at any threshold.
        _, regressions = diff_counters(
            baseline, payload["counters"], threshold=0.0, mode="floor"
        )
        assert regressions == []
        # A baseline far above reality trips the floor.
        _, regressions = diff_counters(
            {"qps_columnar": 1e12}, payload["counters"],
            threshold=0.20, mode="floor",
        )
        assert len(regressions) == 1


class TestFanBatch:
    def test_shape_and_validity(self):
        queries = vector_bench.fan_batch(2, width=5)
        assert len(queries) == 2 * 5 * 4
        types = {q.query_type for q in queries}
        thetas = {q.theta for q in queries}
        assert types == {"ALL", "EXIST"}
        assert len(thetas) == 2
        # Each (slope, type, theta) fan has distinct intercepts.
        seen = set()
        for q in queries:
            key = (q.slope, q.query_type, q.theta, q.intercept)
            assert key not in seen
            seen.add(key)
