"""ASCII chart rendering tests."""

import math

import pytest

from repro.bench.figures import FigureSeries
from repro.bench.harness import QueryBatchStats
from repro.bench.plotting import ascii_chart, chart_figure


class TestAsciiChart:
    def test_basic_render(self):
        text = ascii_chart(
            "demo",
            [500, 2000, 4000],
            {"T2": [4.0, 12.0, 22.0], "R+": [8.0, 21.0, 39.0]},
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert any("o = R+" in line for line in lines)
        assert any("x = T2" in line for line in lines)
        assert "500" in text and "4000" in text
        # the y-max label appears on the top row
        assert "39" in lines[2]

    def test_marks_and_overlap(self):
        text = ascii_chart(
            "overlap", [1, 2], {"a": [5.0, 5.0], "b": [5.0, 1.0]}
        )
        assert "8" in text  # overlapping points collapse to '8'

    def test_nan_points_skipped(self):
        text = ascii_chart("nan", [1, 2], {"a": [math.nan, 3.0]})
        assert "nan" in text.splitlines()[0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart("bad", [1, 2], {"a": [1.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart("bad", [1], {})

    def test_single_point(self):
        text = ascii_chart("one", [7], {"a": [3.0]})
        assert "7" in text


class TestChartFigure:
    def test_from_figure_series(self):
        line = FigureSeries("T2 k=2")
        line.points[500] = QueryBatchStats(index_accesses=4.0, total_accesses=40.0)
        line.points[2000] = QueryBatchStats(index_accesses=12.0, total_accesses=120.0)
        other = FigureSeries("R+-tree")
        other.points[500] = QueryBatchStats(index_accesses=9.0, total_accesses=50.0)
        other.points[2000] = QueryBatchStats(index_accesses=21.0, total_accesses=130.0)
        text = chart_figure([line, other])
        assert "T2 k=2" in text and "R+-tree" in text
        text_total = chart_figure([line, other], metric="total_accesses")
        assert "total_accesses" in text_total
