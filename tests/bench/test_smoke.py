"""Perf-smoke gate logic tests (pure; the workload itself runs in CI)."""

from repro.bench.smoke import check_baseline


def _doc(counters):
    return {"counters": counters}


class TestCheckBaseline:
    def test_within_baseline_passes(self):
        assert check_baseline(_doc({"a": 5.0}), _doc({"a": 5.0})) == []
        assert check_baseline(_doc({"a": 4.0}), _doc({"a": 5.0})) == []

    def test_exceeding_counter_fails(self):
        violations = check_baseline(_doc({"a": 6.0}), _doc({"a": 5.0}))
        assert len(violations) == 1
        assert "exceeds baseline" in violations[0]

    def test_missing_counter_fails(self):
        violations = check_baseline(_doc({}), _doc({"a": 5.0}))
        assert violations == ["baseline counter a missing from current run"]

    def test_new_counter_is_not_a_violation(self):
        assert check_baseline(_doc({"a": 1.0, "b": 9.0}), _doc({"a": 5.0})) == []

    def test_violations_sorted_by_key(self):
        violations = check_baseline(
            _doc({"b": 9.0, "a": 9.0}), _doc({"a": 1.0, "b": 1.0})
        )
        assert violations[0].startswith("a:")
        assert violations[1].startswith("b:")
