"""bench-diff tests: artifact loading, gating semantics, exit codes."""

import json

import pytest

from repro.bench.diff import diff_counters, load_counters, main


def write_json(path, doc):
    path.write_text(json.dumps(doc), encoding="utf-8")
    return str(path)


class TestLoadCounters:
    def test_registry_shape(self, tmp_path):
        path = write_json(tmp_path / "a.json", {
            "counters": {"pages": 10, "queries": 4.0, "flag": True},
            "histograms": {"ms": {"count": 3}},
        })
        assert load_counters(path) == {"pages": 10.0, "queries": 4.0}

    def test_flat_shape(self, tmp_path):
        path = write_json(tmp_path / "a.json", {
            "pages": 10, "label": "fig9", "nested": {"x": 1},
        })
        assert load_counters(path) == {"pages": 10.0}

    def test_rejects_non_object(self, tmp_path):
        path = write_json(tmp_path / "a.json", [1, 2])
        with pytest.raises(ValueError, match="JSON object"):
            load_counters(path)
        path = write_json(tmp_path / "b.json", {"counters": [1]})
        with pytest.raises(ValueError, match="counters"):
            load_counters(path)


class TestDiffCounters:
    def test_identical_is_clean(self):
        report, regressions = diff_counters({"a": 1.0}, {"a": 1.0})
        assert report == [] and regressions == []

    def test_rise_regresses_at_zero_threshold(self):
        report, regressions = diff_counters({"pages": 100.0},
                                            {"pages": 101.0})
        assert len(report) == 1
        assert regressions == report
        assert "+1" in regressions[0]

    def test_threshold_tolerates_small_rise(self):
        _, regressions = diff_counters(
            {"pages": 100.0}, {"pages": 104.0}, threshold=0.05
        )
        assert regressions == []
        _, regressions = diff_counters(
            {"pages": 100.0}, {"pages": 106.0}, threshold=0.05
        )
        assert len(regressions) == 1

    def test_improvement_reported_but_never_gates(self):
        report, regressions = diff_counters({"pages": 100.0},
                                            {"pages": 80.0})
        assert len(report) == 1 and regressions == []

    def test_missing_baseline_counter_regresses(self):
        _, regressions = diff_counters({"pages": 100.0}, {})
        assert len(regressions) == 1
        assert "MISSING" in regressions[0]

    def test_new_counter_is_informational(self):
        report, regressions = diff_counters({}, {"shard_pages{shard=0}": 5})
        assert any("NEW" in line for line in report)
        assert regressions == []

    def test_zero_baseline_does_not_divide(self):
        report, regressions = diff_counters({"errs": 0.0}, {"errs": 2.0})
        assert len(regressions) == 1
        assert "%" not in report[0]


class TestFloorMode:
    """--mode floor: counters are throughput, falls (not rises) gate."""

    def test_fall_regresses_at_zero_threshold(self):
        _, regressions = diff_counters(
            {"qps": 100.0}, {"qps": 99.0}, mode="floor"
        )
        assert len(regressions) == 1

    def test_rise_never_gates(self):
        report, regressions = diff_counters(
            {"qps": 100.0}, {"qps": 150.0}, mode="floor"
        )
        assert len(report) == 1 and regressions == []

    def test_threshold_tolerates_small_fall(self):
        _, regressions = diff_counters(
            {"qps": 100.0}, {"qps": 81.0}, threshold=0.20, mode="floor"
        )
        assert regressions == []
        _, regressions = diff_counters(
            {"qps": 100.0}, {"qps": 79.0}, threshold=0.20, mode="floor"
        )
        assert len(regressions) == 1

    def test_missing_baseline_counter_still_regresses(self):
        _, regressions = diff_counters({"qps": 100.0}, {}, mode="floor")
        assert len(regressions) == 1
        assert "MISSING" in regressions[0]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            diff_counters({}, {}, mode="sideways")

    def test_mode_flag_wires_through(self, tmp_path):
        base = write_json(tmp_path / "base.json", {"qps": 100})
        cur = write_json(tmp_path / "cur.json", {"qps": 90})
        assert main([base, cur]) == 0  # ceiling: a fall is fine
        assert main([base, cur, "--mode", "floor"]) == 1
        assert main([base, cur, "--mode", "floor", "--threshold", "0.2"]) == 0


class TestMainExitCodes:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        base = write_json(tmp_path / "base.json", {"counters": {"a": 1}})
        cur = write_json(tmp_path / "cur.json", {"counters": {"a": 1}})
        assert main([base, cur]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = write_json(tmp_path / "base.json", {"counters": {"a": 1}})
        cur = write_json(tmp_path / "cur.json", {"counters": {"a": 2}})
        assert main([base, cur]) == 1
        assert "REGRESSIONS" in capsys.readouterr().err

    def test_threshold_flag_wires_through(self, tmp_path):
        base = write_json(tmp_path / "base.json", {"a": 100})
        cur = write_json(tmp_path / "cur.json", {"a": 104})
        assert main([base, cur, "--threshold", "0.05"]) == 0
        assert main([base, cur, "--threshold", "0.01"]) == 1

    def test_unreadable_artifact_exits_two(self, tmp_path, capsys):
        base = write_json(tmp_path / "base.json", {"a": 1})
        assert main([base, str(tmp_path / "missing.json")]) == 2
        assert "bench-diff:" in capsys.readouterr().err
