"""R+-tree and Guttman R-tree structural/functional tests."""

import random

import pytest

from repro.errors import IndexError_
from repro.storage import Pager
from repro.constraints.theta import Theta
from repro.rtree import GuttmanRTree, RPlusTree, rect_2d


def rand_rect(rng, max_side=10.0):
    x, y = rng.uniform(-50, 50), rng.uniform(-50, 50)
    w, h = rng.uniform(0.2, max_side), rng.uniform(0.2, max_side)
    return rect_2d(x, y, x + w, y + h)


@pytest.fixture(params=[RPlusTree, GuttmanRTree], ids=["rplus", "guttman"])
def tree_cls(request):
    return request.param


class TestBulkLoad:
    def test_search_matches_bruteforce(self, tree_cls):
        rng = random.Random(11)
        items = [(i, rand_rect(rng)) for i in range(1200)]
        tree = tree_cls(Pager())
        tree.bulk_load(items)
        tree.check_invariants()
        for _ in range(40):
            q = rand_rect(rng, max_side=30)
            assert tree.search_rect(q) == {
                i for i, r in items if r.intersects(q)
            }

    def test_bulk_load_empty(self, tree_cls):
        tree = tree_cls(Pager())
        tree.bulk_load([])
        assert tree.root is None
        assert tree.search_rect(rect_2d(0, 0, 1, 1)) == set()

    def test_bulk_load_single(self, tree_cls):
        tree = tree_cls(Pager())
        tree.bulk_load([(7, rect_2d(0, 0, 1, 1))])
        assert tree.search_rect(rect_2d(0.5, 0.5, 2, 2)) == {7}
        assert tree.height == 1

    def test_bulk_nonempty_rejected(self, tree_cls):
        tree = tree_cls(Pager())
        tree.insert(0, rect_2d(0, 0, 1, 1))
        with pytest.raises(IndexError_):
            tree.bulk_load([(1, rect_2d(0, 0, 1, 1))])

    def test_identical_rects(self, tree_cls):
        # degenerate case: every object identical
        items = [(i, rect_2d(1, 1, 2, 2)) for i in range(300)]
        tree = tree_cls(Pager())
        tree.bulk_load(items)
        assert tree.search_rect(rect_2d(0, 0, 3, 3)) == set(range(300))

    def test_rplus_duplication_counted(self):
        rng = random.Random(12)
        items = [(i, rand_rect(rng, max_side=25)) for i in range(600)]
        tree = RPlusTree(Pager())
        tree.bulk_load(items)
        assert tree.size >= len(items)  # clipping duplicates entries

    def test_guttman_no_duplication(self):
        rng = random.Random(13)
        items = [(i, rand_rect(rng, max_side=25)) for i in range(600)]
        tree = GuttmanRTree(Pager())
        tree.bulk_load(items)
        assert tree.size == len(items)


class TestDynamic:
    def test_insert_then_search(self, tree_cls):
        rng = random.Random(14)
        items = [(i, rand_rect(rng)) for i in range(500)]
        tree = tree_cls(Pager())
        for i, r in items:
            tree.insert(i, r)
        tree.check_invariants()
        for _ in range(25):
            q = rand_rect(rng, max_side=30)
            assert tree.search_rect(q) == {
                i for i, r in items if r.intersects(q)
            }

    def test_delete(self, tree_cls):
        rng = random.Random(15)
        items = [(i, rand_rect(rng)) for i in range(400)]
        tree = tree_cls(Pager())
        for i, r in items:
            tree.insert(i, r)
        for i, r in items[:200]:
            assert tree.delete(i, r) >= 1
        tree.check_invariants()
        everything = rect_2d(-200, -200, 200, 200)
        assert tree.search_rect(everything) == {i for i, _ in items[200:]}

    def test_delete_everything(self, tree_cls):
        rng = random.Random(16)
        items = [(i, rand_rect(rng)) for i in range(150)]
        tree = tree_cls(Pager())
        for i, r in items:
            tree.insert(i, r)
        for i, r in items:
            tree.delete(i, r)
        assert tree.search_rect(rect_2d(-200, -200, 200, 200)) == set()

    def test_delete_absent_returns_zero(self, tree_cls):
        tree = tree_cls(Pager())
        tree.insert(0, rect_2d(0, 0, 1, 1))
        assert tree.delete(99, rect_2d(0, 0, 1, 1)) == 0

    def test_insert_into_bulk_loaded(self, tree_cls):
        rng = random.Random(17)
        items = [(i, rand_rect(rng)) for i in range(300)]
        tree = tree_cls(Pager())
        tree.bulk_load(items)
        extra = [(1000 + i, rand_rect(rng)) for i in range(100)]
        for i, r in extra:
            tree.insert(i, r)
        tree.check_invariants()
        q = rect_2d(-60, -60, 60, 60)
        assert tree.search_rect(q) == {i for i, _ in items + extra}


class TestHalfPlaneSearch:
    def test_no_false_dismissals(self, tree_cls):
        rng = random.Random(18)
        items = [(i, rand_rect(rng)) for i in range(800)]
        tree = tree_cls(Pager())
        tree.bulk_load(items)
        for _ in range(40):
            s = rng.uniform(-3, 3)
            b = rng.uniform(-80, 80)
            theta = rng.choice([Theta.GE, Theta.LE])
            result = tree.search_halfplane(s, b, theta, "EXIST")
            want = {
                i for i, r in items if r.intersects_halfplane((s,), b, theta)
            }
            assert result.confirmed | result.to_refine == want
            # confirmed are sound: their full MBR may span several pieces,
            # but each confirmed piece is inside, hence intersecting.
            for rid in result.confirmed:
                full = next(r for i, r in items if i == rid)
                assert full.intersects_halfplane((s,), b, theta)

    def test_all_mode_confirms_nothing(self, tree_cls):
        rng = random.Random(19)
        items = [(i, rand_rect(rng)) for i in range(200)]
        tree = tree_cls(Pager())
        tree.bulk_load(items)
        result = tree.search_halfplane(0.0, -1000.0, Theta.GE, "ALL")
        assert result.confirmed == set()
        assert result.to_refine == set(range(200))

    def test_bad_query_type(self, tree_cls):
        from repro.errors import QueryError

        tree = tree_cls(Pager())
        with pytest.raises(QueryError):
            tree.search_halfplane(0.0, 0.0, Theta.GE, "SOME")


class TestAccounting:
    def test_page_count_tracks_tree(self, tree_cls):
        rng = random.Random(20)
        tree = tree_cls(Pager())
        tree.bulk_load([(i, rand_rect(rng)) for i in range(500)])
        assert tree.page_count == len(tree.owned_pages)
        assert tree.page_count >= 10

    def test_search_counts_node_reads(self, tree_cls):
        rng = random.Random(21)
        tree = tree_cls(Pager())
        tree.bulk_load([(i, rand_rect(rng)) for i in range(500)])
        with tree.pager.measure() as scope:
            tree.search_rect(rect_2d(0, 0, 1, 1))
        assert 1 <= scope.delta.logical_reads <= tree.page_count
