"""RTreePlanner tests: build, dynamic updates, query semantics."""

import pytest

from repro.constraints import GeneralizedRelation, Theta
from repro.core import ALL, EXIST, HalfPlaneQuery
from repro.errors import QueryError
from repro.geometry.predicates import evaluate_relation
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.planner import RTreePlanner
from repro.storage import Pager
from tests.conftest import random_bounded_tuple


@pytest.fixture
def setup(rng):
    relation = GeneralizedRelation(
        [random_bounded_tuple(rng) for _ in range(70)]
    )
    planner = RTreePlanner.build(relation, pager=Pager(), key_bytes=4)
    return planner, relation


class TestBuild:
    def test_pieces_are_tight_after_refined_build(self, setup):
        planner, _ = setup
        assert planner.tree.pieces_are_tight

    def test_skips_unsatisfiable(self, rng):
        from repro.constraints import parse_tuple

        relation = GeneralizedRelation(
            [
                random_bounded_tuple(rng),
                parse_tuple("x <= 0 and x >= 1", dimension=2),
            ]
        )
        planner = RTreePlanner.build(relation)
        assert planner.skipped == [1]

    def test_guttman_variant(self, rng):
        relation = GeneralizedRelation(
            [random_bounded_tuple(rng) for _ in range(40)]
        )
        planner = RTreePlanner.build(relation, tree_cls=GuttmanRTree)
        res = planner.exist(0.0, -1e6, Theta.GE)
        assert res.ids == set(relation.ids())


class TestQueries:
    def test_matches_oracle(self, setup, rng):
        planner, relation = setup
        for _ in range(60):
            qtype = rng.choice([ALL, EXIST])
            theta = rng.choice([Theta.GE, Theta.LE])
            a = rng.uniform(-3, 3)
            b = rng.uniform(-70, 70)
            res = planner.query(HalfPlaneQuery(qtype, a, b, theta))
            want = evaluate_relation(relation, qtype, a, b, theta)
            assert res.ids == want, (qtype, theta, a, b)

    def test_all_never_confirms_free(self, setup):
        planner, relation = setup
        res = planner.all(0.0, -1e6, Theta.GE)
        assert res.ids == set(relation.ids())
        assert res.accepted_without_refinement == 0

    def test_exist_confirms_interior(self, setup):
        planner, relation = setup
        res = planner.exist(0.0, -1e6, Theta.GE)
        assert res.ids == set(relation.ids())
        assert res.accepted_without_refinement > 0


class TestDynamic:
    def test_insert_delete_query(self, setup, rng):
        planner, relation = setup
        extra = {}
        for tid in range(1000, 1020):
            t = random_bounded_tuple(rng)
            extra[tid] = t
            relation_tid = relation.add(t)
            # keep ids aligned between relation and planner
            planner.insert(relation_tid, t)
        res = planner.exist(0.0, -1e6, Theta.GE)
        assert res.ids == set(relation.ids())
        victim = relation.ids()[0]
        relation.remove(victim)
        planner.delete(victim)
        res = planner.exist(0.0, -1e6, Theta.GE)
        assert res.ids == set(relation.ids())

    def test_delete_unknown_rejected(self, setup):
        planner, _ = setup
        with pytest.raises(QueryError):
            planner.delete(987654)

    def test_unbounded_insert_rejected(self, setup):
        from repro.constraints import parse_tuple
        from repro.errors import GeometryError

        planner, _ = setup
        with pytest.raises(GeometryError):
            planner.insert(5000, parse_tuple("y <= 0"))
