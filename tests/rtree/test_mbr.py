"""Rect algebra and half-plane predicate tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints import Theta, parse_tuple
from repro.errors import GeometryError, QueryError
from repro.rtree import Rect, rect_2d, spread_axis

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return rect_2d(x1, y1, x2, y2)


class TestBasics:
    def test_inverted_rejected(self):
        with pytest.raises(GeometryError):
            rect_2d(1, 0, 0, 1)

    def test_area_margin_center(self):
        r = rect_2d(0, 0, 4, 2)
        assert r.area() == 8.0
        assert r.margin() == 6.0
        assert r.center() == (2.0, 1.0)

    def test_intersects(self):
        a = rect_2d(0, 0, 2, 2)
        assert a.intersects(rect_2d(1, 1, 3, 3))
        assert a.intersects(rect_2d(2, 2, 3, 3))  # corner touch, closed
        assert not a.intersects(rect_2d(2.1, 0, 3, 1))

    def test_contains(self):
        a = rect_2d(0, 0, 4, 4)
        assert a.contains_rect(rect_2d(1, 1, 2, 2))
        assert a.contains_rect(a)
        assert not a.contains_rect(rect_2d(1, 1, 5, 2))
        assert a.contains_point((0, 4))
        assert not a.contains_point((4.5, 0))

    def test_union_intersection(self):
        a = rect_2d(0, 0, 2, 2)
        b = rect_2d(1, 1, 3, 3)
        assert a.union(b) == rect_2d(0, 0, 3, 3)
        assert a.intersection(b) == rect_2d(1, 1, 2, 2)
        assert a.intersection(rect_2d(5, 5, 6, 6)) is None

    def test_enlargement(self):
        a = rect_2d(0, 0, 1, 1)
        assert a.enlargement(rect_2d(0, 0, 2, 1)) == pytest.approx(1.0)

    def test_from_polyhedron(self, triangle):
        r = Rect.from_polyhedron(triangle.extension())
        assert r == rect_2d(0, 0, 4, 3)

    def test_from_unbounded_raises(self):
        with pytest.raises(GeometryError):
            Rect.from_polyhedron(parse_tuple("y <= 0").extension())

    def test_spread_axis(self):
        rs = [rect_2d(0, 0, 1, 1), rect_2d(10, 0, 11, 1)]
        assert spread_axis(rs) == 0
        rs = [rect_2d(0, 0, 1, 1), rect_2d(0, 10, 1, 11)]
        assert spread_axis(rs) == 1

    def test_3d_rect(self):
        r = Rect((0, 0, 0), (1, 2, 3))
        assert r.area() == 6.0
        assert r.dimension == 3


class TestHalfPlanePredicates:
    def test_simple_ge(self):
        r = rect_2d(0, 0, 2, 2)
        # y >= 1: intersects, not inside
        assert r.intersects_halfplane((0.0,), 1.0, Theta.GE)
        assert not r.inside_halfplane((0.0,), 1.0, Theta.GE)
        # y >= -1: fully inside
        assert r.inside_halfplane((0.0,), -1.0, Theta.GE)
        # y >= 3: disjoint
        assert not r.intersects_halfplane((0.0,), 3.0, Theta.GE)

    def test_sloped(self):
        r = rect_2d(0, 0, 2, 2)
        # y >= x - 3 contains the box (worst corner (2,0): 0 >= -1)
        assert r.inside_halfplane((1.0,), -3.0, Theta.GE)
        # y <= x: cuts through the box
        assert r.intersects_halfplane((1.0,), 0.0, Theta.LE)
        assert not r.inside_halfplane((1.0,), 0.0, Theta.LE)

    def test_strict_theta_rejected(self):
        with pytest.raises(QueryError):
            rect_2d(0, 0, 1, 1).intersects_halfplane((0.0,), 0.0, Theta.LT)

    def test_wrong_slope_length(self):
        with pytest.raises(QueryError):
            rect_2d(0, 0, 1, 1).intersects_halfplane((0.0, 1.0), 0.0, Theta.GE)

    @settings(max_examples=100, deadline=None)
    @given(r=rects(), s=st.floats(-3, 3), b=st.floats(-150, 150), ge=st.booleans())
    def test_predicates_match_corner_enumeration(self, r, s, b, ge):
        theta = Theta.GE if ge else Theta.LE
        corners = [
            (x, y)
            for x in (r.lows[0], r.highs[0])
            for y in (r.lows[1], r.highs[1])
        ]
        values = [y - s * x - b for x, y in corners]
        if min(abs(v) for v in values) < 1e-9:
            return  # knife-edge: float association order decides the sign
        if theta is Theta.GE:
            want_intersects = max(values) >= 0
            want_inside = min(values) >= 0
        else:
            want_intersects = min(values) <= 0
            want_inside = max(values) <= 0
        assert r.intersects_halfplane((s,), b, theta, tol=0.0) == want_intersects
        assert r.inside_halfplane((s,), b, theta, tol=0.0) == want_inside

    @settings(max_examples=60, deadline=None)
    @given(r=rects(), s=st.floats(-3, 3), b=st.floats(-150, 150), ge=st.booleans())
    def test_inside_implies_intersects(self, r, s, b, ge):
        theta = Theta.GE if ge else Theta.LE
        if r.inside_halfplane((s,), b, theta):
            assert r.intersects_halfplane((s,), b, theta)
