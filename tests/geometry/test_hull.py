"""Convex hull, area, and centroid tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.hull import convex_hull_2d, polygon_area, polygon_centroid

coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
points = st.lists(st.tuples(coords, coords), min_size=1, max_size=40)


class TestHull:
    def test_square(self):
        hull = convex_hull_2d([(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)])
        assert len(hull) == 4
        assert (0.5, 0.5) not in hull

    def test_collinear_reduced_to_segment(self):
        hull = convex_hull_2d([(0, 0), (1, 1), (2, 2), (3, 3)])
        assert hull == [(0.0, 0.0), (3.0, 3.0)]

    def test_single_point(self):
        assert convex_hull_2d([(1, 2), (1, 2)]) == [(1.0, 2.0)]

    def test_counter_clockwise(self):
        hull = convex_hull_2d([(0, 0), (4, 0), (4, 4), (0, 4)])
        area2 = 0.0
        n = len(hull)
        for i in range(n):
            x1, y1 = hull[i]
            x2, y2 = hull[(i + 1) % n]
            area2 += x1 * y2 - x2 * y1
        assert area2 > 0  # CCW orientation has positive signed area

    @settings(max_examples=80, deadline=None)
    @given(points)
    def test_hull_contains_all_points(self, pts):
        # Quantise to a grid: the hull's collinearity tolerance may drop
        # true extreme points of inputs that are within float-epsilon of
        # fully degenerate (documented behaviour); on a 0.01 grid every
        # non-zero cross product is far above the tolerance.
        pts = [(round(x, 2), round(y, 2)) for x, y in pts]
        hull = convex_hull_2d(pts)
        if len(hull) < 3:
            return
        # Every input point must be inside or on the hull.
        n = len(hull)
        for px, py in pts:
            for i in range(n):
                x1, y1 = hull[i]
                x2, y2 = hull[(i + 1) % n]
                cross = (x2 - x1) * (py - y1) - (y2 - y1) * (px - x1)
                scale = max(1.0, abs(x2 - x1), abs(y2 - y1), abs(px), abs(py))
                assert cross >= -1e-6 * scale * scale

    @settings(max_examples=40, deadline=None)
    @given(points)
    def test_hull_idempotent(self, pts):
        hull = convex_hull_2d(pts)
        assert convex_hull_2d(hull) == sorted(hull) or convex_hull_2d(hull)
        # Same vertex set when re-hulled.
        assert set(convex_hull_2d(hull)) == set(hull)


class TestAreaCentroid:
    def test_unit_square_area(self):
        assert polygon_area([(0, 0), (1, 0), (1, 1), (0, 1)]) == pytest.approx(1.0)

    def test_triangle_area(self):
        assert polygon_area([(0, 0), (4, 0), (2, 3)]) == pytest.approx(6.0)

    def test_degenerate_area_zero(self):
        assert polygon_area([(0, 0), (1, 1)]) == 0.0

    def test_square_centroid(self):
        cx, cy = polygon_centroid([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert (cx, cy) == (pytest.approx(1.0), pytest.approx(1.0))

    def test_centroid_of_segment_falls_back_to_mean(self):
        cx, cy = polygon_centroid([(0, 0), (2, 2)])
        assert (cx, cy) == (pytest.approx(1.0), pytest.approx(1.0))

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            polygon_centroid([])

    def test_translation_invariance(self):
        rng = random.Random(5)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(12)]
        hull = convex_hull_2d(pts)
        moved = convex_hull_2d([(x + 100, y - 40) for x, y in pts])
        assert polygon_area(hull) == pytest.approx(polygon_area(moved), rel=1e-9)
        cx, cy = polygon_centroid(hull)
        mx, my = polygon_centroid(moved)
        assert mx == pytest.approx(cx + 100)
        assert my == pytest.approx(cy - 40)
