"""Batched geometry warm-ups are bit-identical to the scalar properties."""

from __future__ import annotations

import random

import pytest

from repro.geometry.cone2d import (
    cone_normals,
    is_pointed_at_origin,
    pointed_many,
)
from repro.geometry.polyhedron import warm_boundedness, warm_vertices
from repro.workloads import make_relation
from tests.conftest import random_mixed_relation


def _polys(relation):
    return [t.extension() for _tid, t in relation]


def test_pointed_many_matches_scalar_edge_cases():
    cases = [
        [],
        [(1.0, 0.0)],
        [(1.0, 0.0), (-1.0, 0.0)],                    # slab: line cone
        [(1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0)],  # box: pointed
        [(1.0, 1.0), (-1.0, 1.0)],                    # wedge
        [(0.5, 0.5), (1.0, 1.0)],                     # parallel normals
    ]
    got = [bool(v) for v in pointed_many(cases)]
    want = [is_pointed_at_origin(ns) if ns else False for ns in cases]
    assert got == want


@pytest.mark.parametrize("size", ["small", "medium"])
def test_pointed_many_matches_scalar_on_workload(size):
    relation = make_relation(300, size, seed=13)
    normals = []
    want = []
    for poly in _polys(relation):
        if poly.is_empty:
            continue
        ns = cone_normals(poly._as_ineqs2d())
        normals.append(ns)
        want.append(is_pointed_at_origin(ns))
    assert [bool(v) for v in pointed_many(normals)] == want


def test_warmed_caches_equal_scalar_properties():
    rng = random.Random(99)
    warmed_rel = random_mixed_relation(rng, 80, unbounded_fraction=0.35)
    rng = random.Random(99)
    scalar_rel = random_mixed_relation(rng, 80, unbounded_fraction=0.35)
    warmed = _polys(warmed_rel)
    warm_boundedness(warmed)
    warm_vertices(warmed)
    for a, b in zip(warmed, _polys(scalar_rel)):
        assert a.is_bounded == b.is_bounded
        assert a.vertices() == b.vertices()
        assert a.rays() == b.rays()


def test_warm_is_idempotent_and_skips_cached():
    relation = make_relation(20, "small", seed=1)
    polys = _polys(relation)
    before = [p.vertices() for p in polys]  # scalar fills the caches
    warm_boundedness(polys)
    warm_vertices(polys)
    assert [p.vertices() for p in polys] == before
    warm_vertices([])  # empty input is a no-op
