"""Exact ALL/EXIST predicate tests, cross-validated three ways:

1. against hand-computed cases (incl. the paper's Figure 1 argument),
2. against conjunction satisfiability (independent of the TOP/BOT
   reduction),
3. against vertex/ray sampling.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints import GeneralizedRelation, Theta, parse_tuple
from repro.geometry.predicates import (
    all_by_sampling,
    all_halfplane,
    evaluate_relation,
    exist_by_conjunction,
    exist_halfplane,
    halfplane_constraint,
)
from repro.errors import QueryError
from tests.conftest import random_bounded_tuple, random_mixed_relation


class TestHandComputed:
    def test_triangle_containment(self, triangle):
        p = triangle.extension()
        assert all_halfplane(p, 0.0, -0.5, Theta.GE)   # y >= -0.5 contains it
        assert not all_halfplane(p, 0.0, 0.5, Theta.GE)
        assert all_halfplane(p, 0.0, 3.0, Theta.LE)    # y <= 3 contains it
        assert not all_halfplane(p, 0.0, 2.9, Theta.LE)

    def test_triangle_intersection(self, triangle):
        p = triangle.extension()
        assert exist_halfplane(p, 0.0, 2.9, Theta.GE)
        assert not exist_halfplane(p, 0.0, 3.1, Theta.GE)
        assert exist_halfplane(p, 0.0, 0.1, Theta.LE)
        assert not exist_halfplane(p, 0.0, -0.1, Theta.LE)

    def test_all_implies_exist(self, triangle):
        p = triangle.extension()
        rng = random.Random(3)
        for _ in range(100):
            s = rng.uniform(-4, 4)
            b = rng.uniform(-10, 10)
            theta = rng.choice([Theta.GE, Theta.LE])
            if all_halfplane(p, s, b, theta):
                assert exist_halfplane(p, s, b, theta)

    def test_empty_tuple_semantics(self):
        p = parse_tuple("x <= 0 and x >= 1", dimension=2).extension()
        assert not exist_halfplane(p, 0.0, 0.0, Theta.GE)
        assert all_halfplane(p, 0.0, 0.0, Theta.GE)  # vacuous

    def test_strict_theta_rejected(self, triangle):
        with pytest.raises(QueryError):
            exist_halfplane(triangle.extension(), 0.0, 0.0, Theta.LT)


class TestFigure1:
    """The paper's Figure 1: window-clipping of unbounded objects is
    incorrect — an unbounded tuple and a query can intersect only
    *outside* any finite window."""

    def test_intersection_outside_window(self):
        # t2: a rightward wedge between y = 0.1x - 2 and y = 0.05x - 4;
        # q ≡ y >= 0.05x + 2 overtakes the wedge top only at x = 80,
        # outside the [-50, 50]² window.
        t2 = parse_tuple("y <= 0.1x - 2 and y >= 0.05x - 4")
        q_slope, q_b = 0.05, 2.0
        poly = t2.extension()
        window_clip = t2.conjoin(
            parse_tuple("x >= -50 and x <= 50 and y >= -50 and y <= 50")
        )
        # inside the window the clipped tuple misses the query...
        assert not exist_halfplane(
            window_clip.extension(), q_slope, q_b, Theta.GE
        )
        # ...but the true unbounded tuple intersects it (at x >= 80):
        assert exist_halfplane(poly, q_slope, q_b, Theta.GE)


class TestCrossValidation:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        s=st.floats(-3, 3),
        b=st.floats(-80, 80),
        ge=st.booleans(),
    )
    def test_exist_matches_conjunction(self, seed, s, b, ge):
        rng = random.Random(seed)
        t = random_bounded_tuple(rng)
        theta = Theta.GE if ge else Theta.LE
        left = exist_halfplane(t.extension(), s, b, theta)
        right = exist_by_conjunction(t, s, b, theta)
        if left != right:
            # Permit disagreement only within boundary tolerance.
            from repro.geometry import top as top_f, bot as bot_f

            boundary = (
                top_f(t.extension(), s) if theta is Theta.GE else bot_f(t.extension(), s)
            )
            assert abs(boundary - b) < 1e-4, (left, right, boundary, b)

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        s=st.floats(-3, 3),
        b=st.floats(-80, 80),
        ge=st.booleans(),
    )
    def test_all_matches_sampling(self, seed, s, b, ge):
        rng = random.Random(seed)
        t = random_bounded_tuple(rng)
        theta = Theta.GE if ge else Theta.LE
        left = all_halfplane(t.extension(), s, b, theta)
        right = all_by_sampling(t, s, b, theta)
        assert left == right


class TestEvaluateRelation:
    def test_oracle_over_relation(self, rng):
        relation = random_mixed_relation(rng, 25)
        answer = evaluate_relation(relation, "EXIST", 0.5, 0.0, Theta.GE)
        for tid, t in relation:
            expected = exist_halfplane(t.extension(), 0.5, 0.0, Theta.GE)
            assert (tid in answer) == expected

    def test_bad_query_type(self):
        with pytest.raises(QueryError):
            evaluate_relation(GeneralizedRelation(), "SOME", 0.0, 0.0, Theta.GE)

    def test_halfplane_constraint_roundtrip(self):
        c = halfplane_constraint(2.0, 3.0, Theta.GE, 2)
        assert c.satisfied_by((0.0, 3.0))
        assert c.satisfied_by((1.0, 5.0))
        assert not c.satisfied_by((1.0, 4.9))
