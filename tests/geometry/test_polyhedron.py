"""ConvexPolyhedron behaviour: emptiness, boundedness, vertices, boxes."""

import math

import pytest

from repro.constraints import parse_tuple
from repro.errors import EmptyExtensionError, GeometryError
from tests.conftest import random_bounded_tuple


class TestStates:
    def test_bounded_polygon(self, triangle):
        p = triangle.extension()
        assert not p.is_empty
        assert p.is_bounded
        assert p.rays() == []

    def test_empty(self):
        p = parse_tuple("x <= 0 and x >= 1", dimension=2).extension()
        assert p.is_empty
        assert p.is_bounded  # by convention
        assert p.vertices() == []
        assert p.area() == 0.0
        assert p.feasible_point() is None

    def test_halfplane(self):
        p = parse_tuple("y <= 0").extension()
        assert not p.is_empty
        assert not p.is_bounded
        assert len(p.rays()) == 2
        assert p.vertices() == []  # vertex-free
        assert p.area() == math.inf

    def test_wedge_has_one_vertex(self):
        p = parse_tuple("y >= x and y >= -x").extension()
        assert not p.is_bounded
        assert len(p.vertices()) == 1
        assert p.vertices()[0] == (pytest.approx(0.0), pytest.approx(0.0))
        assert len(p.rays()) == 2

    def test_slab(self):
        p = parse_tuple("y >= x - 1 and y <= x + 1").extension()
        assert not p.is_bounded
        rays = p.rays()
        assert len(rays) == 2
        for rx, ry in rays:
            assert ry == pytest.approx(rx)  # both rays along slope 1


class TestMeasures:
    def test_triangle_area_and_centroid(self, triangle):
        p = triangle.extension()
        assert p.area() == pytest.approx(6.0)
        cx, cy = p.centroid()
        assert cx == pytest.approx(2.0)
        assert cy == pytest.approx(1.0)

    def test_centroid_of_unbounded_raises(self):
        with pytest.raises(GeometryError):
            parse_tuple("y <= 0").extension().centroid()

    def test_centroid_of_empty_raises(self):
        with pytest.raises(EmptyExtensionError):
            parse_tuple("x <= 0 and x >= 1", dimension=2).extension().centroid()

    def test_bounding_box(self, triangle):
        lows, highs = triangle.extension().bounding_box()
        assert lows == (pytest.approx(0.0), pytest.approx(0.0))
        assert highs == (pytest.approx(4.0), pytest.approx(3.0))

    def test_bounding_box_unbounded_raises(self):
        with pytest.raises(GeometryError):
            parse_tuple("y <= 0").extension().bounding_box()

    def test_bounding_box_empty_raises(self):
        with pytest.raises(EmptyExtensionError):
            parse_tuple("x <= 0 and x >= 1", dimension=2).extension().bounding_box()


class TestSupportConsistency:
    def test_vertices_attain_support(self, rng):
        for _ in range(25):
            t = random_bounded_tuple(rng)
            p = t.extension()
            verts = p.vertices()
            for c in [(1.0, 0.0), (0.0, 1.0), (0.7, -0.3), (-1.0, -1.0)]:
                sup = p.support(c)
                best = max(c[0] * x + c[1] * y for x, y in verts)
                assert sup == pytest.approx(best, rel=1e-7, abs=1e-7)

    def test_support_cached(self, triangle):
        p = triangle.extension()
        assert p.support((1.0, 0.0)) is p.support((1.0, 0.0)) or (
            p.support((1.0, 0.0)) == p.support((1.0, 0.0))
        )

    def test_support_dimension_check(self, triangle):
        with pytest.raises(GeometryError):
            triangle.extension().support((1.0, 0.0, 0.0))

    def test_contains_point(self, triangle):
        p = triangle.extension()
        assert p.contains_point((2.0, 1.0))
        assert not p.contains_point((2.0, 3.5))

    def test_vertices_inside_constraints(self, rng):
        for _ in range(25):
            t = random_bounded_tuple(rng)
            for v in t.extension().vertices():
                assert t.satisfied_by(v, tol=1e-5)
