"""Degenerate geometry: the cases the paper glosses over.

Unbounded polyhedra (±∞ envelopes and bounded finite domains), single-
point tuples (TOP ≡ BOT), and query slopes sitting exactly on a dual-
envelope breakpoint — for both the scalar profile engine
(``geometry/dual.py``) and the vectorized surface
(``geometry/vectorized.py``).
"""

import math

from repro.constraints import GeneralizedTuple, parse_tuple
from repro.constraints.theta import Theta
from repro.geometry import dual
from repro.geometry.predicates import all_halfplane, exist_halfplane
from repro.geometry.vectorized import DualSurface


class TestUnboundedEnvelopes:
    def test_halfplane_top_infinite_bot_finite(self):
        t = parse_tuple("y >= 2*x + 1")
        poly = t.extension()
        assert dual.top(poly, 2.0) == math.inf
        assert dual.bot(poly, 2.0) == 1.0  # boundary line itself
        # Any other slope tilts out of the half-plane both ways.
        assert dual.top(poly, 0.0) == math.inf
        assert dual.bot(poly, 0.0) == -math.inf

    def test_slab_finite_exactly_at_its_slope(self):
        t = parse_tuple("y >= x - 1 and y <= x + 1")
        poly = t.extension()
        assert dual.top(poly, 1.0) == 1.0
        assert dual.bot(poly, 1.0) == -1.0
        assert dual.top(poly, 0.5) == math.inf
        assert dual.bot(poly, 0.5) == -math.inf

    def test_wedge_profile_domain_is_bounded(self):
        t = parse_tuple("y >= x and y >= -x")  # upward wedge
        poly = t.extension()
        profile = dual.bot_profile_2d(poly)
        # BOT is finite exactly for slopes between the two edge slopes.
        assert profile.domain_lo == -1.0
        assert profile.domain_hi == 1.0
        assert profile(0.0) == 0.0
        assert profile(2.0) == -math.inf
        top_profile = dual.top_profile_2d(poly)
        # TOP is +inf everywhere: the wedge is vertically unbounded.
        assert top_profile.domain_lo > top_profile.domain_hi

    def test_all_is_false_on_infinite_side(self):
        t = parse_tuple("y >= 2*x + 1")
        poly = t.extension()
        assert not all_halfplane(poly, 0.0, 0.0, Theta.LE)  # TOP = +inf
        assert all_halfplane(poly, 2.0, 0.5, Theta.GE)  # BOT = 1 >= 0.5
        assert exist_halfplane(poly, 0.0, 1e9, Theta.GE)


class TestSinglePointTuples:
    def test_top_equals_bot_for_every_slope(self):
        t = GeneralizedTuple.from_box((3.0, 4.0), (3.0, 4.0))
        poly = t.extension()
        for s in (-2.0, -0.5, 0.0, 0.5, 2.0):
            expected = 4.0 - s * 3.0  # the dual line of the point
            assert dual.top(poly, s) == expected
            assert dual.bot(poly, s) == expected

    def test_exist_iff_all_on_singleton(self):
        t = GeneralizedTuple.from_box((3.0, 4.0), (3.0, 4.0))
        poly = t.extension()
        for s, b, theta in [
            (0.0, 4.0, Theta.GE),  # exactly through the point
            (0.0, 3.9, Theta.GE),
            (0.0, 4.1, Theta.GE),
            (1.0, 1.0, Theta.LE),
        ]:
            assert exist_halfplane(poly, s, b, theta) == all_halfplane(
                poly, s, b, theta
            )

    def test_profile_is_one_piece(self):
        poly = GeneralizedTuple.from_box((3.0, 4.0), (3.0, 4.0)).extension()
        profile = dual.top_profile_2d(poly)
        assert len(profile.pieces) == 1
        assert profile.breakpoints == []


class TestBreakpointSlopes:
    def test_query_slope_exactly_at_envelope_breakpoint(self, triangle):
        poly = triangle.extension()
        profile = dual.top_profile_2d(poly)
        assert profile.breakpoints  # a triangle's TOP graph bends
        for s in profile.breakpoints:
            # At a breakpoint two vertices attain the support together;
            # the profile, the support engine, and the surface agree.
            top_value = dual.top(poly, s)
            assert abs(profile(s) - top_value) <= 1e-9 * max(
                1.0, abs(top_value)
            )
            candidates = [y - s * x for x, y in poly.vertices()]
            assert abs(top_value - max(candidates)) <= 1e-9

    def test_vectorized_surface_matches_at_breakpoints(self, triangle):
        items = [(0, triangle)]
        surface = DualSurface.from_items(items)
        poly = triangle.extension()
        for s in dual.top_profile_2d(poly).breakpoints + [0.0, 1.5, -1.5]:
            assert surface.top_at(s)[0] == dual.top(poly, s)
            assert surface.bot_at(s)[0] == dual.bot(poly, s)


class TestVectorizedDegenerate:
    def test_surface_mixed_degenerate_answers_match_scalar(self):
        tuples = [
            (0, parse_tuple("y >= 2*x + 1")),  # half-plane
            (1, parse_tuple("y >= x - 1 and y <= x + 1")),  # slab
            (2, GeneralizedTuple.from_box((3.0, 4.0), (3.0, 4.0))),  # point
            (3, GeneralizedTuple.from_vertices_2d([(0, 0), (4, 0), (2, 3)])),
        ]
        surface = DualSurface.from_items(tuples)
        for s in (-2.0, -1.0, 0.0, 1.0, 2.0):
            for i, (_tid, t) in enumerate(tuples):
                poly = t.extension()
                assert surface.top_at(s)[i] == dual.top(poly, s)
                assert surface.bot_at(s)[i] == dual.bot(poly, s)
        for query_type in ("ALL", "EXIST"):
            for theta in (Theta.GE, Theta.LE):
                for s, b in [(1.0, 0.0), (0.0, 4.0), (2.0, 1.0)]:
                    predicate = (
                        all_halfplane if query_type == "ALL" else exist_halfplane
                    )
                    want = {
                        tid
                        for tid, t in tuples
                        if predicate(t.extension(), s, b, theta)
                    }
                    assert surface.answer(query_type, s, b, theta) == want
