"""Line-envelope utility tests."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.envelope import (
    envelope_value,
    lower_envelope,
    upper_envelope,
)

line = st.tuples(
    st.floats(min_value=-50, max_value=50),
    st.floats(min_value=-50, max_value=50),
)


class TestUpperEnvelope:
    def test_single_line(self):
        pieces = upper_envelope([(2.0, 1.0)])
        assert len(pieces) == 1
        assert pieces[0].x_from == -math.inf
        assert pieces[0].x_to == math.inf
        assert envelope_value(pieces, 3.0) == pytest.approx(7.0)

    def test_two_crossing_lines(self):
        pieces = upper_envelope([(1.0, 0.0), (-1.0, 0.0)])
        assert len(pieces) == 2
        assert envelope_value(pieces, -2.0) == pytest.approx(2.0)
        assert envelope_value(pieces, 2.0) == pytest.approx(2.0)
        assert envelope_value(pieces, 0.0) == pytest.approx(0.0)

    def test_dominated_line_dropped(self):
        pieces = upper_envelope([(0.0, 0.0), (0.0, 5.0)])
        assert len(pieces) == 1
        assert pieces[0].intercept == 5.0

    def test_middle_line_dominated_by_pair(self):
        # y = 0x + 0 is below max(x, -x) everywhere except x=0 (tie)
        pieces = upper_envelope([(1.0, 0.0), (0.0, 0.0), (-1.0, 0.0)])
        slopes = {p.slope for p in pieces}
        assert slopes == {1.0, -1.0}

    def test_empty(self):
        assert upper_envelope([]) == []

    @settings(max_examples=80, deadline=None)
    @given(st.lists(line, min_size=1, max_size=12), st.floats(-100, 100))
    def test_envelope_is_pointwise_max(self, lines, x):
        pieces = upper_envelope(lines)
        expected = max(m * x + q for m, q in lines)
        assert envelope_value(pieces, x) == pytest.approx(expected, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(line, min_size=1, max_size=12))
    def test_pieces_tile_the_real_line(self, lines):
        pieces = upper_envelope(lines)
        assert pieces[0].x_from == -math.inf
        assert pieces[-1].x_to == math.inf
        for left, right in zip(pieces, pieces[1:]):
            assert left.x_to == right.x_from
            # Values agree at the handover point.
            assert left.value(left.x_to) == pytest.approx(
                right.value(right.x_from), rel=1e-6, abs=1e-6
            )


class TestLowerEnvelope:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(line, min_size=1, max_size=12), st.floats(-100, 100))
    def test_lower_is_pointwise_min(self, lines, x):
        pieces = lower_envelope(lines)
        expected = min(m * x + q for m, q in lines)
        assert envelope_value(pieces, x) == pytest.approx(expected, abs=1e-6)

    def test_mirror_of_upper(self):
        lines = [(1.0, 0.0), (-2.0, 3.0), (0.5, -1.0)]
        lower = lower_envelope(lines)
        upper = upper_envelope([(-m, -q) for m, q in lines])
        assert len(lower) == len(upper)
