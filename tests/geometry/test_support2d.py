"""Exact 2-D support engine tests, cross-checked against sampling."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints import parse_tuple
from repro.geometry.support2d import (
    feasible_point_2d,
    infimum_2d,
    ineqs_from_atoms,
    support_2d,
)


def ineqs(text):
    return ineqs_from_atoms(parse_tuple(text).constraints)


def ineqs2d(text):
    return ineqs_from_atoms(parse_tuple(text, dimension=2).constraints)


class TestFeasibility:
    def test_box_feasible(self):
        assert feasible_point_2d(ineqs("x >= 0 and x <= 1 and y >= 0 and y <= 1")) is not None

    def test_empty_detected(self):
        assert feasible_point_2d(ineqs2d("x >= 1 and x <= 0")) is None

    def test_parallel_empty_slab(self):
        assert feasible_point_2d(ineqs("y >= x + 1 and y <= x - 1")) is None

    def test_single_halfplane(self):
        p = feasible_point_2d(ineqs("y <= -5"))
        assert p is not None and p[1] <= -5 + 1e-6

    def test_line_region(self):
        # y <= 0 and y >= 0: the x axis
        p = feasible_point_2d(ineqs("y <= 0 and y >= 0"))
        assert p is not None and abs(p[1]) <= 1e-6

    def test_point_region(self):
        p = feasible_point_2d(
            ineqs("x >= 1 and x <= 1 and y >= 2 and y <= 2")
        )
        assert p == (pytest.approx(1.0), pytest.approx(2.0))


class TestSupportValues:
    def test_unit_box(self):
        system = ineqs("x >= 0 and x <= 1 and y >= 0 and y <= 1")
        assert support_2d(system, (1.0, 0.0)) == pytest.approx(1.0)
        assert support_2d(system, (1.0, 1.0)) == pytest.approx(2.0)
        assert support_2d(system, (-1.0, -1.0)) == pytest.approx(0.0)
        assert infimum_2d(system, (1.0, 1.0)) == pytest.approx(0.0)

    def test_halfplane_mixed(self):
        system = ineqs("y <= 0")
        assert support_2d(system, (0.0, 1.0)) == pytest.approx(0.0)
        assert support_2d(system, (1.0, 0.0)) == math.inf
        assert support_2d(system, (0.0, -1.0)) == math.inf
        assert infimum_2d(system, (0.0, 1.0)) == -math.inf

    def test_empty_returns_none(self):
        assert support_2d(ineqs2d("x >= 1 and x <= 0"), (1.0, 0.0)) is None
        assert infimum_2d(ineqs2d("x >= 1 and x <= 0"), (1.0, 0.0)) is None

    def test_no_constraints(self):
        assert support_2d([], (1.0, 0.0)) == math.inf
        assert support_2d([], (0.0, 0.0)) == 0.0

    def test_wedge_finite_direction(self):
        # x >= 0, y >= x: unbounded region, but sup of -x - y is 0 at origin
        system = ineqs("x >= 0 and y >= x")
        assert support_2d(system, (-1.0, -1.0)) == pytest.approx(0.0)
        assert support_2d(system, (0.0, 1.0)) == math.inf

    def test_zero_direction_on_nonempty(self):
        assert support_2d(ineqs("x <= 1 and y <= 1"), (0.0, 0.0)) == pytest.approx(0.0)


@st.composite
def random_polygon_system(draw):
    """A random bounded polygon as ≤-inequalities plus its vertices."""
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    n = rng.randint(3, 7)
    cx, cy = rng.uniform(-20, 20), rng.uniform(-20, 20)
    pts = [
        (
            cx + rng.uniform(1, 15) * math.cos(2 * math.pi * i / n + rng.uniform(0, 0.3)),
            cy + rng.uniform(1, 15) * math.sin(2 * math.pi * i / n + rng.uniform(0, 0.3)),
        )
        for i in range(n)
    ]
    return pts


class TestAgainstVertexEnumeration:
    @settings(max_examples=60, deadline=None)
    @given(random_polygon_system(), st.floats(-3, 3), st.floats(-3, 3))
    def test_support_equals_hull_max(self, pts, cx, cy):
        from repro.constraints import GeneralizedTuple
        from repro.errors import ConstraintError

        if abs(cx) + abs(cy) < 1e-3:
            return
        try:
            t = GeneralizedTuple.from_vertices_2d(pts)
        except ConstraintError:
            return
        system = ineqs_from_atoms(t.constraints)
        value = support_2d(system, (cx, cy))
        hull = t.extension().vertices()
        expected = max(cx * x + cy * y for x, y in hull)
        assert value == pytest.approx(expected, rel=1e-6, abs=1e-6)
