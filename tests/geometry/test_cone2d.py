"""Recession-cone arithmetic tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.cone2d import (
    cone_normals,
    extreme_rays,
    is_pointed_at_origin,
    unbounded_in,
)

angle = st.floats(min_value=0.0, max_value=2 * math.pi, exclude_max=True)


def halfplane(nx, ny, beta=0.0):
    return ((nx, ny), beta)


class TestBoundedness:
    def test_box_cone_is_trivial(self):
        normals = [(1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0)]
        assert is_pointed_at_origin(normals)

    def test_halfplane_cone_not_trivial(self):
        assert not is_pointed_at_origin([(0.0, 1.0)])

    def test_no_constraints_full_plane(self):
        assert not is_pointed_at_origin([])

    def test_three_spread_normals_trivial(self):
        normals = [
            (math.cos(a), math.sin(a)) for a in (0.0, 2.2, 4.4)
        ]
        assert is_pointed_at_origin(normals)

    def test_two_normals_never_trivial(self):
        # Two half-planes always leave an escape direction.
        assert not is_pointed_at_origin([(1.0, 0.0), (0.0, 1.0)])


class TestUnboundedIn:
    def test_halfplane_up_is_blocked(self):
        # y <= 0 ->  normal (0,1): no escape upward, escape down/sideways
        normals = [(0.0, 1.0)]
        assert not unbounded_in(normals, (0.0, 1.0))
        assert unbounded_in(normals, (0.0, -1.0))
        assert unbounded_in(normals, (1.0, 0.0))
        assert unbounded_in(normals, (1.0, 0.5))  # d=(1,0) gives c·d>0
        assert unbounded_in(normals, (1.0, -0.5))

    def test_slab_along_axis(self):
        # -1 <= y <= 1: escapes only horizontally
        normals = [(0.0, 1.0), (0.0, -1.0)]
        assert unbounded_in(normals, (1.0, 0.0))
        assert unbounded_in(normals, (-1.0, 0.0))
        assert not unbounded_in(normals, (0.0, 1.0))

    def test_boundary_direction_not_strictly_positive(self):
        # cone = x axis; functional c=(0,1) is 0 on it, not positive
        normals = [(0.0, 1.0), (0.0, -1.0)]
        assert not unbounded_in(normals, (0.0, 1.0))

    @given(a1=angle, a2=angle, c=angle)
    def test_wedge_cone_matches_analytic(self, a1, a2, c):
        normals = [
            (math.cos(a1), math.sin(a1)),
            (math.cos(a2), math.sin(a2)),
        ]
        direction = (math.cos(c), math.sin(c))
        got = unbounded_in(normals, direction)
        # Analytic: does any unit direction d with n_i·d <= 0 have c·d > 0?
        want = _analytic_unbounded(normals, direction)
        if want is not None:  # skip knife-edge cases near tolerance
            assert got == want


def _analytic_unbounded(normals, c, samples=2880):
    """Dense angular sampling; ``None`` when the answer is margin-sensitive
    (cone-boundary directions can carry tiny positive functional values
    that unit sampling with a feasibility margin cannot resolve)."""
    strict_best = -2.0
    near_best = -2.0
    for i in range(samples):
        phi = 2 * math.pi * i / samples
        d = (math.cos(phi), math.sin(phi))
        value = c[0] * d[0] + c[1] * d[1]
        if all(nx * d[0] + ny * d[1] <= -1e-6 for nx, ny in normals):
            strict_best = max(strict_best, value)
        if all(nx * d[0] + ny * d[1] <= 1e-6 for nx, ny in normals):
            near_best = max(near_best, value)
    if strict_best > 1e-3:
        return True  # clearly unbounded: interior direction, clear gain
    if near_best < -1e-3:
        return False  # clearly bounded: even relaxed directions lose
    return None


class TestExtremeRays:
    def test_halfplane_rays(self):
        rays = extreme_rays([(0.0, 1.0)])  # y <= 0
        assert sorted(rays) == [(-1.0, 0.0), (1.0, -0.0)] or len(rays) == 2

    def test_wedge_rays(self):
        # x <= 0 and y <= 0: cone is the third quadrant
        rays = set()
        for rx, ry in extreme_rays([(1.0, 0.0), (0.0, 1.0)]):
            rays.add((round(rx, 6), round(ry, 6)))
        assert (-1.0, 0.0) in rays or (-1.0, -0.0) in rays
        assert (0.0, -1.0) in rays or (-0.0, -1.0) in rays
        assert len(rays) == 2

    def test_trivial_cone_no_rays(self):
        normals = [(1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0)]
        assert extreme_rays(normals) == []

    def test_rays_are_unit(self):
        for rx, ry in extreme_rays([(0.3, 1.0)]):
            assert math.hypot(rx, ry) == pytest.approx(1.0)


def test_cone_normals_skips_trivial():
    ineqs = [halfplane(0.0, 0.0, 1.0), halfplane(1.0, 2.0, 3.0)]
    assert cone_normals(ineqs) == [(1.0, 2.0)]
