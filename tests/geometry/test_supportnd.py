"""d-dimensional support engine (LP-backed) tests."""

import math

import pytest

from repro.constraints import GeneralizedTuple, parse_tuple
from repro.errors import GeometryError
from repro.geometry.supportnd import (
    feasible_point_nd,
    ineqs_from_atoms_nd,
    support_nd,
    vertices_nd,
)


def cube3(side=2.0):
    return GeneralizedTuple.from_box(
        (-side / 2,) * 3, (side / 2,) * 3
    )


class TestSupport:
    def test_cube_supports(self):
        system = ineqs_from_atoms_nd(cube3().constraints)
        assert support_nd(system, (1, 0, 0)) == pytest.approx(1.0)
        assert support_nd(system, (1, 1, 1)) == pytest.approx(3.0)
        assert support_nd(system, (-1, 0, 0)) == pytest.approx(1.0)

    def test_unbounded(self):
        t = parse_tuple("x3 <= 0", dimension=3)
        system = ineqs_from_atoms_nd(t.constraints)
        assert support_nd(system, (1, 0, 0)) == math.inf
        assert support_nd(system, (0, 0, 1)) == pytest.approx(0.0)

    def test_infeasible(self):
        t = parse_tuple("x1 <= 0 and x1 >= 1", dimension=3)
        system = ineqs_from_atoms_nd(t.constraints)
        assert support_nd(system, (1, 0, 0)) is None

    def test_empty_system(self):
        assert support_nd([], (1, 0)) == math.inf
        assert support_nd([], (0, 0)) == 0.0


class TestFeasiblePoint:
    def test_cube_interior(self):
        system = ineqs_from_atoms_nd(cube3().constraints)
        p = feasible_point_nd(system)
        assert p is not None
        assert all(abs(v) <= 1.0 + 1e-6 for v in p)

    def test_infeasible_none(self):
        t = parse_tuple("x1 <= 0 and x1 >= 1", dimension=2)
        assert feasible_point_nd(ineqs_from_atoms_nd(t.constraints)) is None


class TestVertices:
    def test_cube_has_8_vertices(self):
        system = ineqs_from_atoms_nd(cube3().constraints)
        verts = vertices_nd(system)
        assert len(verts) == 8
        for v in verts:
            assert all(abs(abs(c) - 1.0) < 1e-6 for c in v)

    def test_empty_raises(self):
        t = parse_tuple("x1 <= 0 and x1 >= 1", dimension=3)
        with pytest.raises(GeometryError):
            vertices_nd(ineqs_from_atoms_nd(t.constraints))


class TestPolyhedronNd:
    def test_3d_top_bot(self):
        # TOP of the unit cube at slope (0,0) is max x3 = 1
        from repro.geometry import bot, top

        p = cube3().extension()
        assert top(p, (0.0, 0.0)) == pytest.approx(1.0)
        assert bot(p, (0.0, 0.0)) == pytest.approx(-1.0)
        # slope (1,1): TOP = max(x3 - x1 - x2) = 1 + 1 + 1
        assert top(p, (1.0, 1.0)) == pytest.approx(3.0)

    def test_3d_boundedness(self):
        assert cube3().extension().is_bounded
        assert not parse_tuple("x3 <= 0", dimension=3).extension().is_bounded

    def test_3d_bounding_box(self):
        lows, highs = cube3().extension().bounding_box()
        assert lows == tuple(pytest.approx(-1.0) for _ in range(3))
        assert highs == tuple(pytest.approx(1.0) for _ in range(3))
