"""Dual transformation tests, including the paper's Example 2.1."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints import GeneralizedTuple, Theta, parse_tuple
from repro.geometry import (
    all_halfplane,
    bot,
    bot_profile_2d,
    dual_line_of_point,
    evaluate_dual_line,
    exist_halfplane,
    strip_bot_min,
    strip_top_max,
    top,
    top_profile_2d,
)
from repro.errors import GeometryError


@pytest.fixture
def pentagon():
    """A polygon realising the assertions of the paper's Example 2.1:
    TOP(0)=4.5, BOT(-1) > -1, BOT(1) < 0 < TOP(1)."""
    return GeneralizedTuple.from_vertices_2d(
        [(1, 2), (3, 1), (5, 3), (4, 4.5), (2, 4)]
    ).extension()


class TestExample21:
    """The worked example of Section 2.1 / Figure 2."""

    def test_q1_all(self, pentagon):
        # q1 ≡ y >= -x - 1: ALL holds because -1 < BOT(-1)
        assert bot(pentagon, -1.0) > -1.0
        assert all_halfplane(pentagon, -1.0, -1.0, Theta.GE)

    def test_q2_exist_boundary(self, pentagon):
        # q2 ≡ y >= 4.5: 4.5 == TOP(0), EXIST holds at the boundary
        assert top(pentagon, 0.0) == pytest.approx(4.5)
        assert exist_halfplane(pentagon, 0.0, 4.5, Theta.GE)
        assert not all_halfplane(pentagon, 0.0, 4.5, Theta.GE)

    def test_q3_exist_both_sides(self, pentagon):
        # q3 ≡ y >= x: BOT(1) < 0 < TOP(1) — the line crosses the polygon
        assert bot(pentagon, 1.0) < 0.0 < top(pentagon, 1.0)
        assert exist_halfplane(pentagon, 1.0, 0.0, Theta.GE)
        assert exist_halfplane(pentagon, 1.0, 0.0, Theta.LE)
        assert not all_halfplane(pentagon, 1.0, 0.0, Theta.GE)

    def test_q2_prime_all(self, pentagon):
        # q2' ≡ y <= 4.5 contains the polygon
        assert all_halfplane(pentagon, 0.0, 4.5, Theta.LE)


class TestTopBotBasics:
    def test_triangle_values(self, triangle):
        p = triangle.extension()
        assert top(p, 0.0) == pytest.approx(3.0)
        assert bot(p, 0.0) == pytest.approx(0.0)
        # TOP(1) = max(y - x) over {(0,0),(4,0),(2,3)} = 1 at (2,3)
        assert top(p, 1.0) == pytest.approx(1.0)
        assert bot(p, 1.0) == pytest.approx(-4.0)

    def test_top_geq_bot(self, triangle):
        p = triangle.extension()
        for s in (-5, -1, 0, 0.5, 2, 10):
            assert top(p, s) >= bot(p, s)  # Proposition 2.1

    def test_unbounded_infinite_values(self):
        p = parse_tuple("y <= 0").extension()
        assert top(p, 0.0) == pytest.approx(0.0)
        assert top(p, 1.0) == math.inf
        assert bot(p, 0.0) == -math.inf

    def test_empty_returns_none(self):
        p = parse_tuple("x <= 0 and x >= 1", dimension=2).extension()
        assert top(p, 0.0) is None
        assert bot(p, 0.0) is None

    def test_slope_vector_validation(self, triangle):
        with pytest.raises(GeometryError):
            top(triangle.extension(), (1.0, 2.0))


class TestTopSemantics:
    """TOP(s)/BOT(s) are the extreme intercepts of slope-s lines meeting P."""

    @settings(max_examples=40, deadline=None)
    @given(s=st.floats(min_value=-4, max_value=4))
    def test_line_at_top_touches(self, triangle, s):
        p = triangle.extension()
        t = top(p, s)
        # Line y = s x + TOP(s) intersects P: EXIST(>=) at b=t holds...
        assert exist_halfplane(p, s, t, Theta.GE)
        # ...but any higher line misses P.
        assert not exist_halfplane(p, s, t + 1e-3, Theta.GE)

    @settings(max_examples=40, deadline=None)
    @given(s=st.floats(min_value=-4, max_value=4))
    def test_convexity_of_top(self, triangle, s):
        p = triangle.extension()
        # TOP is convex: midpoint below the chord.
        a, b = s - 1.0, s + 1.0
        assert top(p, s) <= (top(p, a) + top(p, b)) / 2 + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(s=st.floats(min_value=-4, max_value=4))
    def test_concavity_of_bot(self, triangle, s):
        p = triangle.extension()
        a, b = s - 1.0, s + 1.0
        assert bot(p, s) >= (bot(p, a) + bot(p, b)) / 2 - 1e-9


class TestStrips:
    @settings(max_examples=30, deadline=None)
    @given(
        a=st.floats(min_value=-2, max_value=2),
        width=st.floats(min_value=0.01, max_value=2),
        frac=st.floats(min_value=0, max_value=1),
    )
    def test_strip_max_dominates_interior(self, triangle, a, width, frac):
        p = triangle.extension()
        b = a + width
        s = a + frac * width
        assert strip_top_max(p, a, b) >= top(p, s) - 1e-9
        assert strip_bot_min(p, a, b) <= bot(p, s) + 1e-9

    def test_strip_equals_endpoint_extremes(self, triangle):
        p = triangle.extension()
        assert strip_top_max(p, 0.0, 1.0) == pytest.approx(
            max(top(p, 0.0), top(p, 1.0))
        )
        assert strip_bot_min(p, 0.0, 1.0) == pytest.approx(
            min(bot(p, 0.0), bot(p, 1.0))
        )


class TestDualPoints:
    def test_dual_line_of_point(self):
        slope, intercept = dual_line_of_point((2.0, 5.0))
        assert slope == (-2.0,)
        assert intercept == 5.0

    def test_duality_key_property(self):
        # p above H iff D(H) below D(p): check with numbers.
        # H: y = 2x + 1, D(H) = (2, 1); p = (1, 4) lies above H (4 > 3).
        p = (1.0, 4.0)
        d_h = (2.0, 1.0)
        # D(p): y = -1 x + 4. D(H) below D(p): 1 < -1*2 + 4 = 2 ✓
        assert d_h[1] < evaluate_dual_line(p, d_h[0])

    def test_evaluate_dual_line(self):
        # F_{D(v)}(s) = v_y - s*v_x
        assert evaluate_dual_line((3.0, 7.0), 2.0) == pytest.approx(1.0)


class TestProfiles:
    def test_profile_matches_support(self, triangle):
        p = triangle.extension()
        prof_top = top_profile_2d(p)
        prof_bot = bot_profile_2d(p)
        for s in (-6, -2.5, -1, 0, 0.3, 1, 2, 7):
            assert prof_top(s) == pytest.approx(top(p, s), abs=1e-9)
            assert prof_bot(s) == pytest.approx(bot(p, s), abs=1e-9)

    def test_profile_breakpoint_count(self, triangle):
        # A triangle's TOP graph has at most 2 interior breakpoints
        prof = top_profile_2d(triangle.extension())
        assert 1 <= len(prof.pieces) <= 3

    def test_unbounded_profile_domain(self):
        # y <= 0: TOP finite only at s = 0... actually TOP(0)=0; +inf elsewhere
        p = parse_tuple("y <= 0").extension()
        prof = top_profile_2d(p)
        assert prof(1.0) == math.inf
        assert prof(-1.0) == math.inf

    def test_profile_of_empty_raises(self):
        with pytest.raises(GeometryError):
            top_profile_2d(parse_tuple("x <= 0 and x >= 1", dimension=2).extension())
